module Obs = Braid_obs

type t = {
  try_dispatch : Machine.slot -> bool;
  cycle : unit -> unit;
  occupancy : unit -> int;
}

(* every core counts the dispatches it refuses (queue full, no free BEU):
   the core-side half of the dispatch-stall story *)
let reject_counter m = Obs.Sink.counter (Machine.obs_sink m) "core.dispatch_rejects"

let issuable m (s : Machine.slot) =
  Machine.reg_ready s
  && Machine.mem_ready m s <> Machine.Mem_blocked
  && Machine.can_issue_ports m s

(* ------------------------------------------------------------------ *)

let in_order m =
  let cfg = Machine.cfg m in
  let rejects = reject_counter m in
  let q : Machine.slot Ring.t = Ring.create ~capacity:cfg.Config.cluster_entries in
  let width = cfg.Config.clusters * cfg.Config.fus_per_cluster in
  let try_dispatch s =
    if Ring.is_full q then begin
      Obs.Counters.incr rejects;
      false
    end
    else begin
      Ring.push q s;
      true
    end
  in
  let cycle () =
    let issued = ref 0 in
    let blocked = ref false in
    while (not !blocked) && !issued < width && not (Ring.is_empty q) do
      let s = Ring.peek q in
      if issuable m s then begin
        ignore (Ring.pop q);
        Machine.do_issue m s;
        incr issued
      end
      else blocked := true
    done
  in
  { try_dispatch; cycle; occupancy = (fun () -> Ring.length q) }

(* ------------------------------------------------------------------ *)

let dep_steer m =
  let cfg = Machine.cfg m in
  let rejects = reject_counter m in
  let fifos =
    Array.init cfg.Config.clusters (fun _ ->
        Ring.create ~capacity:cfg.Config.cluster_entries)
  in
  let producer_uids (s : Machine.slot) =
    Array.to_list (Array.map fst s.Machine.ev.Trace.deps)
  in
  let try_dispatch s =
    let deps = producer_uids s in
    let tail_matches f =
      (not (Ring.is_empty f))
      && (not (Ring.is_full f))
      &&
      let tail = Ring.get f (Ring.length f - 1) in
      List.mem tail.Machine.ev.Trace.uid deps
    in
    let target =
      match Array.find_opt tail_matches fifos with
      | Some f -> Some f
      | None -> Array.find_opt Ring.is_empty fifos
    in
    match target with
    | Some f ->
        Ring.push f s;
        true
    | None ->
        Obs.Counters.incr rejects;
        false
  in
  let cycle () =
    Array.iter
      (fun f ->
        let budget = ref cfg.Config.fus_per_cluster in
        let blocked = ref false in
        while (not !blocked) && !budget > 0 && not (Ring.is_empty f) do
          let s = Ring.peek f in
          if issuable m s then begin
            ignore (Ring.pop f);
            Machine.do_issue m s;
            decr budget
          end
          else blocked := true
        done)
      fifos
  in
  let occupancy () = Array.fold_left (fun acc f -> acc + Ring.length f) 0 fifos in
  { try_dispatch; cycle; occupancy }

(* ------------------------------------------------------------------ *)

let ooo m =
  let cfg = Machine.cfg m in
  let rejects = reject_counter m in
  (* each scheduler is an unordered window; selection is oldest-first *)
  let scheds =
    Array.init cfg.Config.clusters (fun _ ->
        Ring.create ~capacity:cfg.Config.cluster_entries)
  in
  let rr = ref 0 in
  let try_dispatch s =
    (* round-robin over schedulers with space: distributes load like the
       paper's distributed 32-entry schedulers *)
    let n = Array.length scheds in
    let rec go k =
      if k = n then begin
        Obs.Counters.incr rejects;
        false
      end
      else
        let f = scheds.((!rr + k) mod n) in
        if Ring.is_full f then go (k + 1)
        else begin
          Ring.push f s;
          rr := (!rr + k + 1) mod n;
          true
        end
    in
    go 0
  in
  let cycle () =
    Array.iter
      (fun f ->
        let budget = ref cfg.Config.fus_per_cluster in
        let continue_ = ref true in
        while !continue_ && !budget > 0 do
          (* oldest ready entry anywhere in the window *)
          let best = ref (-1) in
          let best_uid = ref max_int in
          Ring.iteri
            (fun i s ->
              if s.Machine.ev.Trace.uid < !best_uid && issuable m s then begin
                best := i;
                best_uid := s.Machine.ev.Trace.uid
              end)
            f;
          if !best >= 0 then begin
            let s = Ring.remove_at f !best in
            Machine.do_issue m s;
            decr budget
          end
          else continue_ := false
        done)
      scheds
  in
  let occupancy () = Array.fold_left (fun acc f -> acc + Ring.length f) 0 scheds in
  { try_dispatch; cycle; occupancy }

(* ------------------------------------------------------------------ *)

type beu = {
  fifo : Machine.slot Ring.t;
  mutable outstanding : Machine.slot list;  (* issued, not yet complete *)
}

let braid m =
  let cfg = Machine.cfg m in
  let rejects = reject_counter m in
  let beus =
    Array.init cfg.Config.clusters (fun _ ->
        { fifo = Ring.create ~capacity:cfg.Config.cluster_entries; outstanding = [] })
  in
  (* BEU currently receiving the in-flight braid from dispatch *)
  let target = ref None in
  let prune b =
    b.outstanding <-
      List.filter (fun s -> not (Machine.is_complete_slot m s)) b.outstanding
  in
  (* A BEU is processing a braid while instructions of it remain in the
     FIFO awaiting issue; once drained onto the FUs the unit can accept
     the next braid (issued instructions keep their results flowing
     through the bypass/external paths). *)
  let free b = Ring.is_empty b.fifo in
  let try_dispatch s =
    if s.Machine.ev.Trace.braid_start then begin
      (* close the previous braid; claim a free BEU *)
      let chosen = ref None in
      Array.iteri (fun i b -> if !chosen = None && free b then chosen := Some i) beus;
      match !chosen with
      | Some i ->
          target := Some i;
          s.Machine.beu <- i;
          Ring.push beus.(i).fifo s;
          true
      | None ->
          Obs.Counters.incr rejects;
          false
    end
    else
      match !target with
      | Some i when not (Ring.is_full beus.(i).fifo) ->
          s.Machine.beu <- i;
          Ring.push beus.(i).fifo s;
          true
      | Some _ | None ->
          Obs.Counters.incr rejects;
          false
  in
  (* §5.2 clustering: external values produced in another cluster of BEUs
     arrive [inter_cluster_latency] cycles later *)
  let cluster_of b =
    if cfg.Config.beu_cluster_size <= 0 then 0
    else b / cfg.Config.beu_cluster_size
  in
  let cluster_ready s =
    cfg.Config.beu_cluster_size <= 0
    || Array.for_all
         (fun (p, via) ->
           via
           ||
           let ps = Machine.slot m p in
           ps.Machine.beu < 0
           || cluster_of ps.Machine.beu = cluster_of s.Machine.beu
           || Machine.now m
              >= ps.Machine.ext_visible + cfg.Config.inter_cluster_latency)
         s.Machine.ev.Trace.deps
  in
  let cycle () =
    Array.iter
      (fun b ->
        prune b;
        let budget = ref cfg.Config.fus_per_cluster in
        let progress = ref true in
        while !progress && !budget > 0 do
          progress := false;
          (* §5.1: the rejected out-of-order BEU scheduler selects over the
             whole queue instead of the head window *)
          let window =
            if cfg.Config.beu_out_of_order then Ring.length b.fifo
            else min cfg.Config.sched_window (Ring.length b.fifo)
          in
          let found = ref (-1) in
          let i = ref 0 in
          while !found < 0 && !i < window do
            let s = Ring.get b.fifo !i in
            if issuable m s && cluster_ready s then found := !i;
            incr i
          done;
          if !found >= 0 then begin
            let s = Ring.remove_at b.fifo !found in
            Machine.do_issue m s;
            b.outstanding <- s :: b.outstanding;
            decr budget;
            progress := true
          end
        done)
      beus
  in
  let occupancy () =
    Array.fold_left
      (fun acc b -> acc + Ring.length b.fifo + List.length b.outstanding)
      0 beus
  in
  { try_dispatch; cycle; occupancy }

let create m =
  match (Machine.cfg m).Config.kind with
  | Config.In_order -> in_order m
  | Config.Dep_steer -> dep_steer m
  | Config.Ooo -> ooo m
  | Config.Braid_exec -> braid m
