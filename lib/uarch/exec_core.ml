module Obs = Braid_obs

type t = {
  try_dispatch : int -> bool;
  cycle : unit -> unit;
  occupancy : unit -> int;
}

(* every core counts the dispatches it refuses (queue full, no free BEU):
   the core-side half of the dispatch-stall story *)
let reject_counter m = Obs.Sink.counter (Machine.obs_sink m) "core.dispatch_rejects"

let issuable m u =
  Machine.reg_ready m u
  && Machine.mem_ready m u <> Machine.Mem_blocked
  && Machine.can_issue_ports m u

(* ------------------------------------------------------------------ *)

let in_order m =
  let cfg = Machine.cfg m in
  let rejects = reject_counter m in
  let q : int Ring.t = Ring.create ~dummy:(-1) ~capacity:cfg.Config.cluster_entries in
  let width = cfg.Config.clusters * cfg.Config.fus_per_cluster in
  let try_dispatch u =
    if Ring.is_full q then begin
      Obs.Counters.incr rejects;
      false
    end
    else begin
      Ring.push q u;
      true
    end
  in
  let cycle () =
    let issued = ref 0 in
    let blocked = ref false in
    while (not !blocked) && !issued < width && not (Ring.is_empty q) do
      let u = Ring.peek q in
      if issuable m u then begin
        ignore (Ring.pop q);
        Machine.do_issue m u;
        incr issued
      end
      else blocked := true
    done
  in
  { try_dispatch; cycle; occupancy = (fun () -> Ring.length q) }

(* ------------------------------------------------------------------ *)

let dep_steer m =
  let cfg = Machine.cfg m in
  let rejects = reject_counter m in
  let fifos =
    Array.init cfg.Config.clusters (fun _ ->
        Ring.create ~dummy:(-1) ~capacity:cfg.Config.cluster_entries)
  in
  let producer_uids u =
    Array.to_list (Array.map fst (Machine.event m u).Trace.deps)
  in
  let try_dispatch u =
    let deps = producer_uids u in
    let tail_matches f =
      (not (Ring.is_empty f))
      && (not (Ring.is_full f))
      &&
      let tail = Ring.get f (Ring.length f - 1) in
      List.mem tail deps
    in
    let target =
      match Array.find_opt tail_matches fifos with
      | Some f -> Some f
      | None -> Array.find_opt Ring.is_empty fifos
    in
    match target with
    | Some f ->
        Ring.push f u;
        true
    | None ->
        Obs.Counters.incr rejects;
        false
  in
  let cycle () =
    Array.iter
      (fun f ->
        let budget = ref cfg.Config.fus_per_cluster in
        let blocked = ref false in
        while (not !blocked) && !budget > 0 && not (Ring.is_empty f) do
          let u = Ring.peek f in
          if issuable m u then begin
            ignore (Ring.pop f);
            Machine.do_issue m u;
            decr budget
          end
          else blocked := true
        done)
      fifos
  in
  let occupancy () = Array.fold_left (fun acc f -> acc + Ring.length f) 0 fifos in
  { try_dispatch; cycle; occupancy }

(* ------------------------------------------------------------------ *)

let ooo m =
  let cfg = Machine.cfg m in
  let rejects = reject_counter m in
  (* each scheduler is an unordered window; selection is oldest-first *)
  let scheds =
    Array.init cfg.Config.clusters (fun _ ->
        Ring.create ~dummy:(-1) ~capacity:cfg.Config.cluster_entries)
  in
  let rr = ref 0 in
  let try_dispatch u =
    (* round-robin over schedulers with space: distributes load like the
       paper's distributed 32-entry schedulers *)
    let n = Array.length scheds in
    let rec go k =
      if k = n then begin
        Obs.Counters.incr rejects;
        false
      end
      else
        let idx = !rr + k in
        let idx = if idx >= n then idx - n else idx in
        let f = scheds.(idx) in
        if Ring.is_full f then go (k + 1)
        else begin
          Ring.push f u;
          Machine.note_resident m u idx;
          rr := (if idx + 1 >= n then 0 else idx + 1);
          true
        end
    in
    go 0
  in
  let nclust = Array.length scheds in
  let fus = cfg.Config.fus_per_cluster in
  let cycle () =
    (* Oldest-ready-first selection in a single pass: entries sit in
       dispatch (age) order, and nothing becomes newly issuable within a
       cycle — wakeups land at [begin_cycle] and issuing only consumes
       ports — so an entry found not issuable need not be reconsidered
       after later issues this cycle. The machine's [ready_in] count
       bounds the scan: once every register-ready entry has been examined
       (issued or found blocked on memory / ports), the window tail
       cannot issue and the scan stops. *)
    for ci = 0 to nclust - 1 do
      let f = scheds.(ci) in
      let budget = ref fus in
      let ready_left = ref (Machine.ready_in m ci) in
      let i = ref 0 in
      while !budget > 0 && !ready_left > 0 && !i < Ring.length f do
        let u = Ring.get f !i in
        if Machine.reg_ready m u then begin
          decr ready_left;
          if
            Machine.mem_ready m u <> Machine.Mem_blocked
            && Machine.can_issue_ports m u
          then begin
            ignore (Ring.remove_at f !i);
            Machine.do_issue m u;
            decr budget
          end
          else incr i
        end
        else incr i
      done
    done
  in
  let occupancy () = Array.fold_left (fun acc f -> acc + Ring.length f) 0 scheds in
  { try_dispatch; cycle; occupancy }

(* ------------------------------------------------------------------ *)

type beu = {
  fifo : int Ring.t;
  mutable outstanding : int list;  (* issued, not yet complete *)
}

let braid m =
  let cfg = Machine.cfg m in
  let rejects = reject_counter m in
  let beus =
    Array.init cfg.Config.clusters (fun _ ->
        { fifo = Ring.create ~dummy:(-1) ~capacity:cfg.Config.cluster_entries; outstanding = [] })
  in
  (* BEU currently receiving the in-flight braid from dispatch *)
  let target = ref None in
  let prune b =
    b.outstanding <-
      List.filter (fun u -> not (Machine.is_complete m u)) b.outstanding
  in
  (* A BEU is processing a braid while instructions of it remain in the
     FIFO awaiting issue; once drained onto the FUs the unit can accept
     the next braid (issued instructions keep their results flowing
     through the bypass/external paths). *)
  let free b = Ring.is_empty b.fifo in
  let try_dispatch u =
    if (Machine.event m u).Trace.braid_start then begin
      (* close the previous braid; claim a free BEU *)
      let chosen = ref None in
      Array.iteri (fun i b -> if !chosen = None && free b then chosen := Some i) beus;
      match !chosen with
      | Some i ->
          target := Some i;
          Machine.set_beu m u i;
          Ring.push beus.(i).fifo u;
          true
      | None ->
          Obs.Counters.incr rejects;
          false
    end
    else
      match !target with
      | Some i when not (Ring.is_full beus.(i).fifo) ->
          Machine.set_beu m u i;
          Ring.push beus.(i).fifo u;
          true
      | Some _ | None ->
          Obs.Counters.incr rejects;
          false
  in
  (* §5.2 clustering: external values produced in another cluster of BEUs
     arrive [inter_cluster_latency] cycles later *)
  let cluster_of b =
    if cfg.Config.beu_cluster_size <= 0 then 0
    else b / cfg.Config.beu_cluster_size
  in
  let cluster_ready u =
    cfg.Config.beu_cluster_size <= 0
    || Array.for_all
         (fun (p, via) ->
           via
           ||
           let pb = Machine.beu m p in
           pb < 0
           || cluster_of pb = cluster_of (Machine.beu m u)
           || Machine.now m
              >= Machine.ext_visible m p + cfg.Config.inter_cluster_latency)
         (Machine.event m u).Trace.deps
  in
  let cycle () =
    Array.iter
      (fun b ->
        prune b;
        (* Single pass over the head window (the whole queue for the
           rejected §5.1 out-of-order BEU variant): as in the ooo core,
           nothing becomes newly issuable within a cycle, so entries
           skipped as not issuable stay skipped while later entries —
           including those sliding into the window as issues shorten the
           queue — are still considered. *)
        let budget = ref cfg.Config.fus_per_cluster in
        let window () =
          if cfg.Config.beu_out_of_order then Ring.length b.fifo
          else min cfg.Config.sched_window (Ring.length b.fifo)
        in
        let i = ref 0 in
        while !budget > 0 && !i < window () do
          let u = Ring.get b.fifo !i in
          if issuable m u && cluster_ready u then begin
            (* monitor: an in-order BEU must never select from beyond the
               head window of its FIFO *)
            (if
               Debug.checking (Machine.debug m)
               && (not cfg.Config.beu_out_of_order)
               && !i >= cfg.Config.sched_window
             then
               Debug.report (Machine.debug m) ~invariant:"beu.window"
                 ~cycle:(Machine.now m) ~uid:u
                 (Printf.sprintf
                    "issued from FIFO position %d beyond the %d-entry window"
                    !i cfg.Config.sched_window));
            ignore (Ring.remove_at b.fifo !i);
            Machine.do_issue m u;
            b.outstanding <- u :: b.outstanding;
            decr budget
          end
          else incr i
        done)
      beus
  in
  let occupancy () =
    Array.fold_left
      (fun acc b -> acc + Ring.length b.fifo + List.length b.outstanding)
      0 beus
  in
  { try_dispatch; cycle; occupancy }

(* ------------------------------------------------------------------ *)

(* CG-OoO (arXiv 1606.01607): dispatch steers whole basic blocks — the
   braid pass's block leaders (offset 0) mark the boundaries — to a free
   block window. Windows are selected out of order relative to each other,
   oldest allocated block first, while instructions inside a window issue
   strictly in order from a [block_head_window]-entry head over a shared
   FU pool. Local (internal) values live inside the window; global
   (external) values go through the commit-released global file. *)
type block_window = {
  bw_fifo : int Ring.t;
  mutable bw_age : int;  (* allocation order of the resident block *)
}

let cgooo m =
  let cfg = Machine.cfg m in
  let rejects = reject_counter m in
  let windows =
    Array.init cfg.Config.block_windows (fun _ ->
        {
          bw_fifo = Ring.create ~dummy:(-1) ~capacity:cfg.Config.cluster_entries;
          bw_age = -1;
        })
  in
  let next_age = ref 0 in
  (* window receiving the block currently in dispatch *)
  let target = ref None in
  (* A window is free once its block has fully issued: like a drained BEU
     FIFO, issued instructions keep flowing through the FUs and files. *)
  let free w = Ring.is_empty w.bw_fifo in
  let try_dispatch u =
    (* A sampled trace window may open mid-block (offset <> 0 with no
       block in dispatch yet): the tail of the cut-off block is timed as
       a (short) block of its own, matching the braid-start promotion
       [Emulator.Compiled.trace_window] performs for the braid core. *)
    if (Machine.event m u).Trace.offset = 0 || !target = None then begin
      (* block leader: close the previous block; claim a free window *)
      let chosen = ref None in
      Array.iteri
        (fun i w -> if !chosen = None && free w then chosen := Some i)
        windows;
      match !chosen with
      | Some i ->
          windows.(i).bw_age <- !next_age;
          incr next_age;
          target := Some i;
          Machine.set_beu m u i;
          Ring.push windows.(i).bw_fifo u;
          true
      | None ->
          Obs.Counters.incr rejects;
          false
    end
    else
      match !target with
      | Some i when not (Ring.is_full windows.(i).bw_fifo) ->
          Machine.set_beu m u i;
          Ring.push windows.(i).bw_fifo u;
          true
      | Some _ | None ->
          Obs.Counters.incr rejects;
          false
  in
  let nwin = Array.length windows in
  let order = Array.init nwin Fun.id in
  let fus = cfg.Config.clusters * cfg.Config.fus_per_cluster in
  let cycle () =
    (* Oldest-block-first selection: rank the windows by allocation age
       (nwin is small; insertion sort on the reused index array allocates
       nothing), then let each window drain its strictly in-order head
       under the shared FU budget. Nothing becomes newly issuable within
       a cycle, so one pass per window suffices. *)
    for i = 1 to nwin - 1 do
      let v = order.(i) in
      let j = ref i in
      while !j > 0 && windows.(order.(!j - 1)).bw_age > windows.(v).bw_age do
        order.(!j) <- order.(!j - 1);
        decr j
      done;
      order.(!j) <- v
    done;
    let budget = ref fus in
    Array.iter
      (fun wi ->
        let w = windows.(wi) in
        let issued_here = ref 0 in
        let blocked = ref false in
        while
          (not !blocked)
          && !budget > 0
          && !issued_here < cfg.Config.block_head_window
          && not (Ring.is_empty w.bw_fifo)
        do
          let u = Ring.peek w.bw_fifo in
          if issuable m u then begin
            ignore (Ring.pop w.bw_fifo);
            Machine.do_issue m u;
            incr issued_here;
            decr budget
          end
          else blocked := true
        done)
      order
  in
  let occupancy () =
    Array.fold_left (fun acc w -> acc + Ring.length w.bw_fifo) 0 windows
  in
  { try_dispatch; cycle; occupancy }

let create m =
  match (Machine.cfg m).Config.kind with
  | Config.In_order -> in_order m
  | Config.Dep_steer -> dep_steer m
  | Config.Ooo -> ooo m
  | Config.Braid_exec -> braid m
  | Config.Cgooo -> cgooo m

let try_dispatch t u = t.try_dispatch u
let cycle t = t.cycle ()
let occupancy t = t.occupancy ()
