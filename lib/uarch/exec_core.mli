(** The pluggable execution core: scheduling structure and selection
    policy, and nothing else.

    A core owns only its queues/windows and its per-cycle selection; all
    issue side-effects (ports, latencies, wakeups, memory) are delegated
    to {!Machine.do_issue}, so every paradigm shares identical port,
    bypass and memory semantics and differs exactly where the paper says
    it does. This interface is the full contract {!Core} (and any future
    paradigm, e.g. EDGE) depends on — nothing about a core's internals
    leaks past it.

    The four paradigms of Fig 13, plus CG-OoO:

    - {b In-order}: one queue; up to the issue width of consecutive ready
      instructions leave from the head; the first stalled instruction
      blocks everything behind it.
    - {b Dependence steering} (Palacharla et al.): instructions are steered
      at dispatch to a FIFO whose tail is one of their producers, else to
      an empty FIFO, else dispatch stalls; only FIFO heads issue.
    - {b Out-of-order}: distributed schedulers, oldest-ready-first
      selection anywhere in each scheduler's window, one FU per scheduler.
    - {b Braid}: whole braids are distributed to a free BEU (one braid per
      BEU at a time, per §3.3); each BEU issues from a small window at the
      head of its FIFO onto its private FUs; internal values live entirely
      inside the BEU.
    - {b CG-OoO} (arXiv 1606.01607): whole basic blocks (the braid pass's
      block leaders mark the boundaries) are steered to a free block
      window; windows are selected out of order, oldest block first, while
      each window issues strictly in order from a
      [block_head_window]-entry head over a shared FU pool. Runs the braid
      binary: the paper's global/local register split is the
      external/internal file split, with the global file released at
      commit.

    {2 Contract}

    The driving pipeline must, each machine cycle and in this order: call
    {!Machine.begin_cycle} (wakeups land), commit, call {!cycle} exactly
    once, then dispatch. The invariants each side relies on:

    - {!create} may allocate structures and register observability
      handles but performs no machine mutation.
    - {!try_dispatch} is called only for the uid at the head of the fetch
      queue, only after {!Machine.can_dispatch} passed this cycle, and in
      trace (uid) order. On [true] the core has accepted residency of the
      uid (the caller then consumes front-end resources via
      {!Machine.note_dispatch}); on [false] the core is full or cannot
      steer the uid this cycle, nothing was inserted, and the caller must
      stop dispatching this cycle. Every refusal increments the core's
      ["core.dispatch_rejects"] counter.
    - {!cycle} selects and issues for the current cycle; every issued uid
      goes through {!Machine.do_issue} after the core checked
      {!Machine.reg_ready}, [mem_ready <> Mem_blocked] and
      {!Machine.can_issue_ports}. Within one cycle nothing becomes newly
      issuable (wakeups land only at [begin_cycle]), which is what makes
      single-pass window scans legal.
    - {!occupancy} is the number of instructions resident in the core:
      dispatched and not yet issued, plus (for cores that track them)
      issued-but-incomplete. It is read after {!cycle} each cycle for the
      occupancy histogram and must not mutate anything. *)

type t

val create : Machine.t -> t
(** Builds the core selected by the machine's configuration
    ([cfg.kind]). *)

val try_dispatch : t -> int -> bool
(** Space/steering check for an instruction uid; inserts on success. *)

val cycle : t -> unit
(** Select and issue for the current cycle. Call exactly once per
    machine cycle, after {!Machine.begin_cycle} and commit. *)

val occupancy : t -> int
(** Instructions resident in the core (pure). *)
