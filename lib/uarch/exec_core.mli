(** The four execution-core paradigms of Fig 13.

    A core owns only its scheduling structure and selection policy; issue
    side-effects (ports, latencies, wakeups) are delegated to
    {!Machine.do_issue}, so the paradigms differ exactly where the paper
    says they do:

    - {b In-order}: one queue; up to the issue width of consecutive ready
      instructions leave from the head; the first stalled instruction
      blocks everything behind it.
    - {b Dependence steering} (Palacharla et al.): instructions are steered
      at dispatch to a FIFO whose tail is one of their producers, else to
      an empty FIFO, else dispatch stalls; only FIFO heads issue.
    - {b Out-of-order}: distributed schedulers, oldest-ready-first
      selection anywhere in each scheduler's window, one FU per scheduler.
    - {b Braid}: whole braids are distributed to a free BEU (one braid per
      BEU at a time, per §3.3); each BEU issues from a small window at the
      head of its FIFO onto its private FUs; internal values live entirely
      inside the BEU. *)

type t = {
  try_dispatch : int -> bool;
      (** Space/steering check for an instruction uid; inserts on
          success. The pipeline calls this only after
          {!Machine.can_dispatch} passed. *)
  cycle : unit -> unit;  (** Select and issue for the current cycle. *)
  occupancy : unit -> int;  (** Instructions resident in the core. *)
}

val create : Machine.t -> t
(** Builds the core selected by the machine's configuration. *)
