module Obs = Braid_obs

type slot = {
  ev : Trace.event;
  mutable dispatched : bool;
  mutable issued : bool;
  mutable completed : bool;
  mutable committed : bool;
  mutable ready_deps : int;
  mutable issue_cycle : int;
  mutable complete_cycle : int;
  mutable ext_visible : int;
  mutable int_visible : int;
  mutable ext_entry_freed : bool;
  mutable beu : int;  (* BEU index for braid-core slots, -1 otherwise *)
}

type mem_status = Mem_blocked | Mem_forward | Mem_cache

(* Per-cycle bounded resource (ports, bypass slots). *)
module Rc = struct
  type t = { tbl : (int, int) Hashtbl.t; limit : int }

  let create limit = { tbl = Hashtbl.create 1024; limit }
  let used t c = match Hashtbl.find_opt t.tbl c with Some u -> u | None -> 0
  let available t c n = used t c + n <= t.limit
  let take t c n = Hashtbl.replace t.tbl c (used t c + n)

  let try_take t c n =
    if available t c n then begin
      take t c n;
      true
    end
    else false

  let take_first_free t c n =
    let rec go c = if available t c n then c else go (c + 1) in
    let c' = go c in
    take t c' n;
    c'
end

type t = {
  cfg : Config.t;
  trace : Trace.t;
  slots : slot array;
  children : (int * bool) list array;
  last_ext_reader : int array;  (* -1 = none; braid dead-value release *)
  hier : Cache.hierarchy;
  pred : Predictor.t;
  mutable now : int;
  (* wakeup and release buckets *)
  wake : (int, int list) Hashtbl.t;
  reg_free_at : (int, int list) Hashtbl.t;  (* cycle -> writer uids *)
  (* resources *)
  read_ports : Rc.t;
  write_ports : Rc.t;
  bypass : Rc.t;
  mutable free_regs : int;
  (* per-cycle dispatch budgets *)
  mutable alloc_left : int;
  mutable src_left : int;
  mutable dst_left : int;
  (* occupancy *)
  mutable dispatched_count : int;
  mutable committed_count : int;
  mutable commit_idx : int;
  mutable inflight_mem : int;
  mutable stores : slot list;  (* in-flight stores, oldest first (reversed) *)
  mutable stall_regs : int;
  mutable unresolved_branches : int;
  branch_resolve_at : (int, int) Hashtbl.t;  (* cycle -> count *)
  (* activity counters for the complexity/energy model (§5.1) *)
  mutable ext_rf_reads : int;
  mutable ext_rf_writes : int;
  mutable int_rf_reads : int;
  mutable int_rf_writes : int;
  mutable bypass_values : int;
  (* observability: registered handles on a live sink, dummies (dead
     stores, no branches) on the disabled one *)
  obs : Obs.Sink.t;
  oc_dispatch : Obs.Counters.counter;
  oc_issue : Obs.Counters.counter;
  oc_commit : Obs.Counters.counter;
  oc_ext_alloc : Obs.Counters.counter;
  oc_ext_early : Obs.Counters.counter;
  oc_ext_commit_rel : Obs.Counters.counter;
  oc_ext_stall : Obs.Counters.counter;
  oc_bypass_use : Obs.Counters.counter;
  oc_bypass_ovf : Obs.Counters.counter;
}

let build_children (trace : Trace.t) =
  let n = Array.length trace.Trace.events in
  let children = Array.make n [] in
  Array.iter
    (fun (e : Trace.event) ->
      Array.iter
        (fun (p, via) -> children.(p) <- (e.Trace.uid, via) :: children.(p))
        e.Trace.deps)
    trace.Trace.events;
  children

let build_last_ext_reader children =
  Array.map
    (fun kids ->
      List.fold_left
        (fun acc (c, via) -> if via then acc else max acc c)
        (-1) kids)
    children

let create ?(obs = Obs.Sink.disabled) cfg trace =
  let events = trace.Trace.events in
  let slots =
    Array.map
      (fun (e : Trace.event) ->
        {
          ev = e;
          dispatched = false;
          issued = false;
          completed = false;
          committed = false;
          ready_deps = Array.length e.Trace.deps;
          issue_cycle = max_int;
          complete_cycle = max_int;
          ext_visible = max_int;
          int_visible = max_int;
          ext_entry_freed = false;
          beu = -1;
        })
      events
  in
  let children = build_children trace in
  {
    cfg;
    trace;
    slots;
    children;
    last_ext_reader = build_last_ext_reader children;
    hier = Cache.create_hierarchy ~obs cfg.Config.mem;
    pred = Predictor.create ~obs cfg;
    now = -1;
    wake = Hashtbl.create 4096;
    reg_free_at = Hashtbl.create 1024;
    read_ports = Rc.create cfg.Config.rf_read_ports;
    write_ports = Rc.create cfg.Config.rf_write_ports;
    bypass = Rc.create cfg.Config.bypass_per_cycle;
    free_regs = cfg.Config.ext_regs;
    alloc_left = 0;
    src_left = 0;
    dst_left = 0;
    dispatched_count = 0;
    committed_count = 0;
    commit_idx = 0;
    inflight_mem = 0;
    stores = [];
    stall_regs = 0;
    unresolved_branches = 0;
    branch_resolve_at = Hashtbl.create 64;
    ext_rf_reads = 0;
    ext_rf_writes = 0;
    int_rf_reads = 0;
    int_rf_writes = 0;
    bypass_values = 0;
    obs;
    oc_dispatch = Obs.Sink.counter obs "dispatch.instrs";
    oc_issue = Obs.Sink.counter obs "issue.instrs";
    oc_commit = Obs.Sink.counter obs "commit.instrs";
    oc_ext_alloc = Obs.Sink.counter obs "extfile.allocs";
    oc_ext_early = Obs.Sink.counter obs "extfile.early_releases";
    oc_ext_commit_rel = Obs.Sink.counter obs "extfile.commit_releases";
    oc_ext_stall = Obs.Sink.counter obs "extfile.dispatch_stalls";
    oc_bypass_use = Obs.Sink.counter obs "bypass.uses";
    oc_bypass_ovf = Obs.Sink.counter obs "bypass.overflows";
  }

let cfg t = t.cfg
let obs_sink t = t.obs
let num_slots t = Array.length t.slots
let slot t i = t.slots.(i)
let now t = t.now
let hierarchy t = t.hier
let predictor t = t.pred
let stall_dispatch_regs t = t.stall_regs

let begin_cycle t =
  t.now <- t.now + 1;
  (match Hashtbl.find_opt t.wake t.now with
  | Some uids ->
      List.iter
        (fun u ->
          let s = t.slots.(u) in
          s.ready_deps <- s.ready_deps - 1)
        uids;
      Hashtbl.remove t.wake t.now
  | None -> ());
  (match Hashtbl.find_opt t.reg_free_at t.now with
  | Some uids ->
      List.iter
        (fun u ->
          let s = t.slots.(u) in
          if not s.ext_entry_freed then begin
            s.ext_entry_freed <- true;
            t.free_regs <- t.free_regs + 1;
            (* released before commit: the braid dead-value path *)
            Obs.Counters.incr t.oc_ext_early
          end)
        uids;
      Hashtbl.remove t.reg_free_at t.now
  | None -> ());
  (match Hashtbl.find_opt t.branch_resolve_at t.now with
  | Some k ->
      t.unresolved_branches <- t.unresolved_branches - k;
      Hashtbl.remove t.branch_resolve_at t.now
  | None -> ());
  t.alloc_left <- t.cfg.Config.alloc_width;
  t.src_left <- t.cfg.Config.rename_src_width;
  t.dst_left <- t.cfg.Config.rename_dst_width

let reg_ready s = s.ready_deps = 0

let is_complete t s = s.issued && s.complete_cycle <= t.now
let is_complete_slot = is_complete

let mem_ready t s =
  if not s.ev.Trace.is_load then Mem_cache
  else begin
    let uid = s.ev.Trace.uid in
    let addr = s.ev.Trace.addr in
    (* Store addresses are known from dispatch (the LSQ disambiguates
       perfectly; all cores share this): only older in-flight stores to the
       same address matter. [stores] is newest-first, so the first match is
       the youngest older conflicting store. *)
    let rec go = function
      | [] -> Mem_cache
      | (st : slot) :: rest ->
          if st.ev.Trace.uid >= uid then go rest
          else if st.ev.Trace.addr = addr then
            if is_complete t st then Mem_forward else Mem_blocked
          else go rest
    in
    go t.stores
  end

let can_issue_ports t s =
  Rc.available t.read_ports t.now s.ev.Trace.ext_src_reads

let schedule_wake t cycle uid =
  let cur = match Hashtbl.find_opt t.wake cycle with Some l -> l | None -> [] in
  Hashtbl.replace t.wake cycle (uid :: cur)

let do_issue t s =
  assert (not s.issued);
  assert (reg_ready s);
  Rc.take t.read_ports t.now s.ev.Trace.ext_src_reads;
  t.ext_rf_reads <- t.ext_rf_reads + s.ev.Trace.ext_src_reads;
  t.int_rf_reads <- t.int_rf_reads + s.ev.Trace.int_src_reads;
  let lat =
    if s.ev.Trace.is_load then
      match mem_ready t s with
      | Mem_forward -> 1
      | Mem_cache -> Cache.data_latency t.hier s.ev.Trace.addr
      | Mem_blocked -> assert false
    else s.ev.Trace.latency
  in
  let complete = t.now + lat in
  s.issued <- true;
  s.issue_cycle <- t.now;
  s.complete_cycle <- complete;
  Obs.Counters.incr t.oc_issue;
  (match Obs.Sink.tracer t.obs with
  | None -> ()
  | Some tr ->
      Obs.Tracer.record tr
        (Obs.Tracer.Exec
           { uid = s.ev.Trace.uid; track = s.beu; start = t.now; dur = lat });
      (* a load that went past the L1D is a miss fill in flight *)
      if s.ev.Trace.is_load && lat > t.cfg.Config.mem.Config.l1d.Config.latency then
        Obs.Tracer.record tr
          (Obs.Tracer.Span
             { name = "L1D miss"; cat = "cache"; track = s.beu; start = t.now; dur = lat }));
  if s.ev.Trace.writes_int then begin
    s.int_visible <- complete;
    t.int_rf_writes <- t.int_rf_writes + 1
  end;
  if s.ev.Trace.writes_ext then begin
    let bypassed = Rc.try_take t.bypass complete 1 in
    let wb = Rc.take_first_free t.write_ports complete 1 in
    t.ext_rf_writes <- t.ext_rf_writes + 1;
    if bypassed then begin
      t.bypass_values <- t.bypass_values + 1;
      Obs.Counters.incr t.oc_bypass_use
    end
    else
      (* all bypass slots of the completion cycle taken: the value must
         wait for a write port and reach consumers through the file *)
      Obs.Counters.incr t.oc_bypass_ovf;
    s.ext_visible <- (if bypassed then complete else wb + 1)
  end;
  List.iter
    (fun (c, via) ->
      let visible = if via then s.int_visible else s.ext_visible in
      let visible =
        if visible = max_int then
          (* consumer reads a register this instruction does not publish
             (e.g. internal read of an I+E value resolved externally);
             fall back to the other copy *)
          min s.int_visible s.ext_visible
        else visible
      in
      let visible = if visible = max_int then complete else visible in
      schedule_wake t (max visible (t.now + 1)) c)
    t.children.(s.ev.Trace.uid);
  (* branch resolution releases its checkpoint *)
  if s.ev.Trace.is_cond_branch && t.cfg.Config.max_unresolved_branches > 0 then begin
    let c = max (complete + 1) (t.now + 1) in
    let cur =
      match Hashtbl.find_opt t.branch_resolve_at c with Some k -> k | None -> 0
    in
    Hashtbl.replace t.branch_resolve_at c (cur + 1)
  end;
  (* Braid dead-value early release: the in-flight external entry of a
     producer frees once the producer has completed and its last external
     reader (compiler liveness bits) has issued. Commit is the fallback
     release, so this only shortens residency. *)
  match t.cfg.Config.kind with
  | Config.Braid_exec ->
      let maybe_release p_uid =
        let p = t.slots.(p_uid) in
        if p.ev.Trace.writes_ext && p.issued && not p.ext_entry_freed then begin
          let r = t.last_ext_reader.(p_uid) in
          let release_at =
            if r < 0 then Some (p.complete_cycle + 1)
            else
              let rs = t.slots.(r) in
              if rs.issued then Some (max p.complete_cycle rs.issue_cycle + 1)
              else None
          in
          match release_at with
          | Some c ->
              let c = max c (t.now + 1) in
              let cur =
                match Hashtbl.find_opt t.reg_free_at c with
                | Some l -> l
                | None -> []
              in
              Hashtbl.replace t.reg_free_at c (p_uid :: cur)
          | None -> ()
        end
      in
      maybe_release s.ev.Trace.uid;
      Array.iter (fun (p, via) -> if not via then maybe_release p) s.ev.Trace.deps
  | Config.In_order | Config.Dep_steer | Config.Ooo -> ()

let can_dispatch t s =
  let e = s.ev in
  let reg_ok = (not e.Trace.writes_ext) || t.free_regs >= 1 in
  let checkpoint_ok =
    t.cfg.Config.max_unresolved_branches = 0
    || (not e.Trace.is_cond_branch)
    || t.unresolved_branches < t.cfg.Config.max_unresolved_branches
  in
  let ok =
    t.alloc_left >= 1
    && t.src_left >= e.Trace.ext_src_reads
    && ((not e.Trace.writes_ext) || t.dst_left >= 1)
    && reg_ok
    && checkpoint_ok
    && ((not (e.Trace.is_load || e.Trace.is_store))
       || t.inflight_mem < t.cfg.Config.lsq_entries)
    && t.dispatched_count - t.committed_count < t.cfg.Config.inflight
  in
  if not reg_ok then begin
    t.stall_regs <- t.stall_regs + 1;
    Obs.Counters.incr t.oc_ext_stall
  end;
  ok

let note_dispatch t s =
  let e = s.ev in
  t.alloc_left <- t.alloc_left - 1;
  t.src_left <- t.src_left - e.Trace.ext_src_reads;
  if e.Trace.writes_ext then begin
    t.dst_left <- t.dst_left - 1;
    t.free_regs <- t.free_regs - 1
  end;
  if e.Trace.is_load || e.Trace.is_store then
    t.inflight_mem <- t.inflight_mem + 1;
  if e.Trace.is_store then t.stores <- s :: t.stores;
  if e.Trace.is_cond_branch && t.cfg.Config.max_unresolved_branches > 0 then
    t.unresolved_branches <- t.unresolved_branches + 1;
  s.dispatched <- true;
  t.dispatched_count <- t.dispatched_count + 1;
  Obs.Counters.incr t.oc_dispatch;
  if e.Trace.writes_ext then Obs.Counters.incr t.oc_ext_alloc;
  match Obs.Sink.tracer t.obs with
  | None -> ()
  | Some tr ->
      Obs.Tracer.record tr
        (Obs.Tracer.Stage
           { cycle = t.now; uid = e.Trace.uid; stage = Obs.Tracer.Dispatch; track = s.beu })

let commit_stage t =
  let budget = ref t.cfg.Config.commit_width in
  let continue_ = ref true in
  let tr = Obs.Sink.tracer t.obs in
  while !continue_ && !budget > 0 && t.commit_idx < Array.length t.slots do
    let s = t.slots.(t.commit_idx) in
    if is_complete t s then begin
      s.completed <- true;
      s.committed <- true;
      Obs.Counters.incr t.oc_commit;
      (match tr with
      | None -> ()
      | Some tr ->
          Obs.Tracer.record tr
            (Obs.Tracer.Stage
               {
                 cycle = t.now;
                 uid = s.ev.Trace.uid;
                 stage = Obs.Tracer.Commit;
                 track = s.beu;
               }));
      (* stores drain to the data cache at commit *)
      if s.ev.Trace.is_store && not t.cfg.Config.mem.Config.perfect_dcache then
        ignore (Cache.data_latency t.hier s.ev.Trace.addr);
      (* release the rename/in-flight entry at commit unless the braid
         dead-value path already released it *)
      if s.ev.Trace.writes_ext && not s.ext_entry_freed then begin
        s.ext_entry_freed <- true;
        t.free_regs <- t.free_regs + 1;
        Obs.Counters.incr t.oc_ext_commit_rel
      end;
      if s.ev.Trace.is_load || s.ev.Trace.is_store then
        t.inflight_mem <- t.inflight_mem - 1;
      if s.ev.Trace.is_store then
        t.stores <- List.filter (fun (st : slot) -> st != s) t.stores;
      t.committed_count <- t.committed_count + 1;
      t.commit_idx <- t.commit_idx + 1;
      decr budget
    end
    else continue_ := false
  done

let all_committed t = t.commit_idx >= Array.length t.slots
let committed_count t = t.committed_count

type dispatch_block =
  | Block_none
  | Block_alloc
  | Block_rename
  | Block_regs
  | Block_checkpoint
  | Block_lsq
  | Block_inflight

let dispatch_block_reason t (s : slot) =
  let e = s.ev in
  if t.alloc_left < 1 then Block_alloc
  else if t.src_left < e.Trace.ext_src_reads
          || (e.Trace.writes_ext && t.dst_left < 1) then Block_rename
  else if
    e.Trace.writes_ext && t.free_regs < 1
    &&
    match t.cfg.Config.kind with
    | Config.In_order | Config.Dep_steer | Config.Ooo -> true
    | Config.Braid_exec -> true
  then Block_regs
  else if
    t.cfg.Config.max_unresolved_branches > 0
    && e.Trace.is_cond_branch
    && t.unresolved_branches >= t.cfg.Config.max_unresolved_branches
  then Block_checkpoint
  else if
    (e.Trace.is_load || e.Trace.is_store)
    && t.inflight_mem >= t.cfg.Config.lsq_entries
  then Block_lsq
  else if t.dispatched_count - t.committed_count >= t.cfg.Config.inflight then
    Block_inflight
  else Block_none

let dispatch_block_name = function
  | Block_none -> "none"
  | Block_alloc -> "alloc-width"
  | Block_rename -> "rename-width"
  | Block_regs -> "ext-regs"
  | Block_checkpoint -> "checkpoint"
  | Block_lsq -> "lsq"
  | Block_inflight -> "inflight"

type activity = {
  ext_rf_reads : int;
  ext_rf_writes : int;
  int_rf_reads : int;
  int_rf_writes : int;
  bypass_values : int;
}

let activity (m : t) =
  let t = m in
  {
    ext_rf_reads = t.ext_rf_reads;
    ext_rf_writes = t.ext_rf_writes;
    int_rf_reads = t.int_rf_reads;
    int_rf_writes = t.int_rf_writes;
    bypass_values = t.bypass_values;
  }
