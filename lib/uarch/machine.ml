module Obs = Braid_obs

type mem_status = Mem_blocked | Mem_forward | Mem_cache

(* Per-cycle bounded resource (ports, bypass slots).

   A circular window of usage counters stamped with the cycle they count
   for: slot [c land mask] is valid for cycle [c] iff [stamp = c]. The
   machine publishes its clock via [set_now] each cycle, which is what
   makes reclamation exact — a slot whose stamp is in the past is dead and
   claimable, while a collision between two live (>= now) cycles doubles
   the window instead of merging their counts. Write-port scans
   ([take_first_free]) can probe arbitrarily far past the nominal horizon
   when a port is saturated, so no fixed window is safe without the
   stamp/now discipline. Steady-state operation allocates nothing. *)
module Rc = struct
  type t = {
    limit : int;
    mutable usage : int array;
    mutable stamp : int array;  (* cycle each slot counts for; -1 = never *)
    mutable mask : int;  (* window size - 1; size is a power of two *)
    mutable now : int;  (* machine clock; stamps < now are dead *)
  }

  let initial_slots = 1024

  let create limit =
    {
      limit;
      usage = Array.make initial_slots 0;
      stamp = Array.make initial_slots (-1);
      mask = initial_slots - 1;
      now = 0;
    }

  let set_now t c = t.now <- c

  (* Grow until every live cycle has its own slot (one doubling suffices
     whenever the live span fits the doubled window, which it always does
     for latency-bounded schedules; the loop is a correctness backstop). *)
  let grow t =
    let live = ref [] in
    Array.iteri
      (fun i s -> if s >= t.now then live := (s, t.usage.(i)) :: !live)
      t.stamp;
    let rec fit size =
      let usage = Array.make size 0 in
      let stamp = Array.make size (-1) in
      let mask = size - 1 in
      let ok =
        List.for_all
          (fun (c, u) ->
            let i = c land mask in
            if stamp.(i) = -1 then begin
              stamp.(i) <- c;
              usage.(i) <- u;
              true
            end
            else false)
          !live
      in
      if ok then begin
        t.usage <- usage;
        t.stamp <- stamp;
        t.mask <- mask
      end
      else fit (2 * size)
    in
    fit (2 * (t.mask + 1))

  (* The slot counting for cycle [c], claiming a dead one if needed.
     Only [take] calls this; reads must stay side-effect free. *)
  let rec slot_of t c =
    let i = c land t.mask in
    let s = t.stamp.(i) in
    if s = c then i
    else if s < t.now then begin
      t.stamp.(i) <- c;
      t.usage.(i) <- 0;
      i
    end
    else begin
      grow t;
      slot_of t c
    end

  let used t c =
    let i = c land t.mask in
    if t.stamp.(i) = c then t.usage.(i) else 0

  let available t c n = used t c + n <= t.limit

  let take t c n =
    let i = slot_of t c in
    t.usage.(i) <- t.usage.(i) + n

  let try_take t c n =
    if available t c n then begin
      take t c n;
      true
    end
    else false

  let take_first_free t c n =
    if n > t.limit then
      invalid_arg
        (Printf.sprintf "Rc.take_first_free: request %d exceeds limit %d" n
           t.limit);
    let rec go c = if available t c n then c else go (c + 1) in
    let c' = go c in
    take t c' n;
    c'
end

(* Per-instruction in-flight state lives in parallel arrays indexed by uid
   (struct-of-arrays): creating a machine allocates a handful of flat
   arrays instead of one record per event, and the schedulers' per-cycle
   scans walk contiguous ints. [complete_cycle]/[issue_cycle] double as
   the issued flag (max_int = not issued). *)
type t = {
  cfg : Config.t;
  trace : Trace.t;
  events : Trace.event array;
  ready_deps : int array;  (* producers not yet visible *)
  issue_cycle : int array;  (* max_int = not issued *)
  complete_cycle : int array;
  ext_visible : int array;  (* cycle from which consumers can read *)
  int_visible : int array;
  beu : int array;  (* BEU index for braid-core slots, -1 otherwise *)
  ext_entry_freed : Bytes.t;  (* '\001' = external-file entry released *)
  (* dependence graph in CSR form: children of p are
     [child_uid.(child_off.(p)) .. child_uid.(child_off.(p+1) - 1)] *)
  child_off : int array;
  child_uid : int array;
  child_via : Bytes.t;  (* '\001' = internal-register edge *)
  last_ext_reader : int array;  (* -1 = none; braid dead-value release *)
  (* scheduler residency: [home.(u)] is the core cluster holding a
     dispatched, not-yet-issued uid (-1 = none); [ready_in.(c)] counts
     resident entries of cluster [c] whose registers are ready. The wake
     drain and [do_issue] keep the counts current so cores can skip
     clusters (and window tails) with no register-ready work. *)
  home : int array;
  ready_in : int array;
  hier : Mem_hier.hierarchy;
  pred : Predictor.t;
  (* config scalars lifted out of the nested record for the hot paths *)
  alloc_width : int;
  src_width : int;
  dst_width : int;
  max_unresolved : int;
  lsq_limit : int;
  inflight_limit : int;
  is_braid : bool;
  mutable now : int;
  (* wakeup and release calendars (payload = consumer/writer uid) *)
  wake : Calq.t;
  reg_free_at : Calq.t;
  (* resources *)
  read_ports : Rc.t;
  write_ports : Rc.t;
  bypass : Rc.t;
  mutable free_regs : int;
  (* per-cycle dispatch budgets *)
  mutable alloc_left : int;
  mutable src_left : int;
  mutable dst_left : int;
  (* occupancy *)
  mutable dispatched_count : int;
  mutable committed_count : int;
  mutable commit_idx : int;
  mutable inflight_mem : int;
  (* [conflict_store.(u)] for a load: uid of the youngest older store to
     the same address (-1 = none), fixed by the trace. Since dispatch and
     commit are both in uid order, the load's disambiguation status needs
     no in-flight store set: the conflicting store is in flight exactly
     while [commit_idx] has not passed it. *)
  conflict_store : int array;
  mutable stall_regs : int;
  mutable unresolved_branches : int;
  branch_resolve_at : Calq.t;  (* one entry per branch at its resolve cycle *)
  (* activity counters for the complexity/energy model (§5.1) *)
  mutable ext_rf_reads : int;
  mutable ext_rf_writes : int;
  mutable int_rf_reads : int;
  mutable int_rf_writes : int;
  mutable bypass_values : int;
  (* observability: registered handles on a live sink, dummies (dead
     stores, no branches) on the disabled one *)
  obs : Obs.Sink.t;
  (* invariant monitor / commit recorder; Debug.off costs one pattern
     match per hook and never mutates machine state *)
  dbg : Debug.t;
  trc : Obs.Tracer.t option;  (* cached: consulted on every issue *)
  oc_dispatch : Obs.Counters.counter;
  oc_issue : Obs.Counters.counter;
  oc_commit : Obs.Counters.counter;
  oc_ext_alloc : Obs.Counters.counter;
  oc_ext_early : Obs.Counters.counter;
  oc_ext_commit_rel : Obs.Counters.counter;
  oc_ext_stall : Obs.Counters.counter;
  oc_bypass_use : Obs.Counters.counter;
  oc_bypass_ovf : Obs.Counters.counter;
}

let create ?(obs = Obs.Sink.disabled) ?(dbg = Debug.off) ?hier cfg trace =
  let events = trace.Trace.events in
  let n = Array.length events in
  let hier =
    match hier with
    | Some h -> h
    | None -> Mem_hier.create_hierarchy ~obs cfg.Config.mem
  in
  (* the static dependence structure (CSR children, last external
     readers, store disambiguation) is memoised on the trace: repeated
     runs — the perf harness — share one copy; only the per-run mutable
     counts are copied fresh *)
  let tb = Trace.dep_tables trace in
  {
    cfg;
    trace;
    events;
    ready_deps = Array.copy tb.Trace.dep_count;
    issue_cycle = Array.make n max_int;
    complete_cycle = Array.make n max_int;
    ext_visible = Array.make n max_int;
    int_visible = Array.make n max_int;
    beu = Array.make n (-1);
    ext_entry_freed = Bytes.make n '\000';
    child_off = tb.Trace.child_off;
    child_uid = tb.Trace.child_uid;
    child_via = tb.Trace.child_via;
    last_ext_reader = tb.Trace.last_ext_reader;
    home = Array.make n (-1);
    ready_in = Array.make (max 1 cfg.Config.clusters) 0;
    hier;
    pred = Predictor.create ~obs cfg;
    alloc_width = cfg.Config.alloc_width;
    src_width = cfg.Config.rename_src_width;
    dst_width = cfg.Config.rename_dst_width;
    max_unresolved = cfg.Config.max_unresolved_branches;
    lsq_limit = cfg.Config.lsq_entries;
    inflight_limit = cfg.Config.inflight;
    is_braid = cfg.Config.kind = Config.Braid_exec;
    now = -1;
    (* the horizon only needs to cover the longest completion latency
       (memory fill, ~400 cycles); an undersized wheel grows, it does not
       miscount *)
    wake = Calq.create ~horizon:1024;
    reg_free_at = Calq.create ~horizon:1024;
    read_ports = Rc.create cfg.Config.rf_read_ports;
    write_ports = Rc.create cfg.Config.rf_write_ports;
    bypass = Rc.create cfg.Config.bypass_per_cycle;
    free_regs = cfg.Config.ext_regs;
    alloc_left = 0;
    src_left = 0;
    dst_left = 0;
    dispatched_count = 0;
    committed_count = 0;
    commit_idx = 0;
    inflight_mem = 0;
    conflict_store = tb.Trace.conflict_store;
    stall_regs = 0;
    unresolved_branches = 0;
    branch_resolve_at = Calq.create ~horizon:1024;
    ext_rf_reads = 0;
    ext_rf_writes = 0;
    int_rf_reads = 0;
    int_rf_writes = 0;
    bypass_values = 0;
    obs;
    dbg;
    trc = Obs.Sink.tracer obs;
    oc_dispatch = Obs.Sink.counter obs "dispatch.instrs";
    oc_issue = Obs.Sink.counter obs "issue.instrs";
    oc_commit = Obs.Sink.counter obs "commit.instrs";
    oc_ext_alloc = Obs.Sink.counter obs "extfile.allocs";
    oc_ext_early = Obs.Sink.counter obs "extfile.early_releases";
    oc_ext_commit_rel = Obs.Sink.counter obs "extfile.commit_releases";
    oc_ext_stall = Obs.Sink.counter obs "extfile.dispatch_stalls";
    oc_bypass_use = Obs.Sink.counter obs "bypass.uses";
    oc_bypass_ovf = Obs.Sink.counter obs "bypass.overflows";
  }

let cfg t = t.cfg
let obs_sink t = t.obs
let debug t = t.dbg
let num_slots t = Array.length t.events
let event t u = t.events.(u)
let now t = t.now
let hierarchy t = t.hier
let predictor t = t.pred
let stall_dispatch_regs t = t.stall_regs

let issued t u = t.issue_cycle.(u) <> max_int
let complete_cycle t u = t.complete_cycle.(u)
let ext_visible t u = t.ext_visible.(u)
let beu t u = t.beu.(u)
let set_beu t u i = t.beu.(u) <- i

let begin_cycle t =
  t.now <- t.now + 1;
  (* publish the clock to the per-cycle resources: it is what lets them
     reclaim stale counter slots exactly *)
  Rc.set_now t.read_ports t.now;
  Rc.set_now t.write_ports t.now;
  Rc.set_now t.bypass t.now;
  Calq.drain t.wake t.now (fun u ->
      let d = t.ready_deps.(u) - 1 in
      t.ready_deps.(u) <- d;
      if d = 0 && t.home.(u) >= 0 then
        t.ready_in.(t.home.(u)) <- t.ready_in.(t.home.(u)) + 1);
  Calq.drain t.reg_free_at t.now (fun u ->
      if Bytes.get t.ext_entry_freed u = '\000' then begin
        Bytes.set t.ext_entry_freed u '\001';
        t.free_regs <- t.free_regs + 1;
        (* released before commit: the braid dead-value path *)
        Obs.Counters.incr t.oc_ext_early;
        Debug.on_ext_release t.dbg ~cycle:t.now ~uid:u
      end);
  Calq.drain t.branch_resolve_at t.now (fun _ ->
      t.unresolved_branches <- t.unresolved_branches - 1);
  t.alloc_left <- t.alloc_width;
  t.src_left <- t.src_width;
  t.dst_left <- t.dst_width

let reg_ready t u = t.ready_deps.(u) = 0

let note_resident t u c =
  t.home.(u) <- c;
  if t.ready_deps.(u) = 0 then t.ready_in.(c) <- t.ready_in.(c) + 1

let ready_in t c = t.ready_in.(c)

(* [complete_cycle] is max_int until issue, so the comparison alone
   implies "issued and past its completion cycle" *)
let is_complete t u = t.complete_cycle.(u) <= t.now

(* Store addresses are known from dispatch (the LSQ disambiguates
   perfectly; all cores share this): only the youngest older store to the
   same address matters, and it is static in the trace. It is still in
   flight — not yet drained to the cache — exactly while [commit_idx]
   hasn't passed it (commit is in uid order, and once it has committed,
   every older same-address store has too, so no conflict remains). *)
let mem_ready t u =
  let su = t.conflict_store.(u) in
  if su < 0 || su < t.commit_idx then Mem_cache
  else if is_complete t su then Mem_forward
  else Mem_blocked

let can_issue_ports t u =
  Rc.available t.read_ports t.now t.events.(u).Trace.ext_src_reads

let schedule_wake t cycle uid = Calq.add t.wake cycle uid

(* Dep-visibility and cross-braid checks at issue time; only reached when
   the monitor is live with invariant checking on. *)
let debug_check_issue t u (e : Trace.event) =
  Array.iter
    (fun (p, via) ->
      if not (issued t p) then
        Debug.report t.dbg ~invariant:"wakeup.premature" ~cycle:t.now ~uid:u
          (Printf.sprintf "consumes producer %d which has not issued" p)
      else begin
        let visible = if via then t.int_visible.(p) else t.ext_visible.(p) in
        let visible =
          if visible = max_int then min t.int_visible.(p) t.ext_visible.(p)
          else visible
        in
        let visible =
          if visible = max_int then t.complete_cycle.(p) else visible
        in
        if visible > t.now then
          Debug.report t.dbg ~invariant:"wakeup.premature" ~cycle:t.now ~uid:u
            (Printf.sprintf
               "reads producer %d before its value is visible (cycle %d)" p
               visible);
        (* internal (local) values are confined to the producing braid and
           its BEU / block window on both cores that carry them *)
        if via && (t.is_braid || t.cfg.Config.kind = Config.Cgooo) then begin
          if t.beu.(p) <> t.beu.(u) then
            Debug.report t.dbg ~invariant:"internal.cross-beu" ~cycle:t.now
              ~uid:u
              (Printf.sprintf "internal value of %d (BEU %d) read on BEU %d" p
                 t.beu.(p) t.beu.(u));
          if t.events.(p).Trace.braid_id <> e.Trace.braid_id then
            Debug.report t.dbg ~invariant:"internal.cross-braid" ~cycle:t.now
              ~uid:u
              (Printf.sprintf
                 "internal value crosses from braid %d (instr %d) to braid %d"
                 t.events.(p).Trace.braid_id p e.Trace.braid_id)
        end
      end)
    e.Trace.deps

let do_issue t u =
  if issued t u then
    invalid_arg
      (Printf.sprintf "Machine.do_issue: instruction %d already issued (cycle %d)"
         u t.now);
  if not (reg_ready t u) then
    invalid_arg
      (Printf.sprintf
         "Machine.do_issue: instruction %d still waits on %d producer(s) (cycle %d)"
         u t.ready_deps.(u) t.now);
  (* leaving the scheduler: registers were ready, so it was counted *)
  (if t.home.(u) >= 0 then begin
     t.ready_in.(t.home.(u)) <- t.ready_in.(t.home.(u)) - 1;
     t.home.(u) <- -1
   end);
  let e = t.events.(u) in
  Rc.take t.read_ports t.now e.Trace.ext_src_reads;
  t.ext_rf_reads <- t.ext_rf_reads + e.Trace.ext_src_reads;
  t.int_rf_reads <- t.int_rf_reads + e.Trace.int_src_reads;
  let lat =
    if e.Trace.is_load then
      match mem_ready t u with
      | Mem_forward -> 1
      | Mem_cache -> Mem_hier.data_latency t.hier e.Trace.addr
      | Mem_blocked ->
          invalid_arg
            (Printf.sprintf
               "Machine.do_issue: load %d issued while blocked on an \
                unresolved older store (cycle %d)"
               u t.now)
    else e.Trace.latency
  in
  let complete = t.now + lat in
  t.issue_cycle.(u) <- t.now;
  t.complete_cycle.(u) <- complete;
  Obs.Counters.incr t.oc_issue;
  (match t.trc with
  | None -> ()
  | Some tr ->
      Obs.Tracer.record tr
        (Obs.Tracer.Exec { uid = u; track = t.beu.(u); start = t.now; dur = lat });
      (* a load that went past the L1D is a miss fill in flight *)
      if e.Trace.is_load && lat > t.cfg.Config.mem.Config.l1d.Config.latency then
        Obs.Tracer.record tr
          (Obs.Tracer.Span
             { name = "L1D miss"; cat = "cache"; track = t.beu.(u); start = t.now; dur = lat }));
  if e.Trace.writes_int then begin
    t.int_visible.(u) <- complete;
    t.int_rf_writes <- t.int_rf_writes + 1
  end;
  let took_bypass = ref false in
  if e.Trace.writes_ext then begin
    let bypassed = Rc.try_take t.bypass complete 1 in
    let wb = Rc.take_first_free t.write_ports complete 1 in
    t.ext_rf_writes <- t.ext_rf_writes + 1;
    if bypassed then begin
      t.bypass_values <- t.bypass_values + 1;
      took_bypass := true;
      Obs.Counters.incr t.oc_bypass_use
    end
    else
      (* all bypass slots of the completion cycle taken: the value must
         wait for a write port and reach consumers through the file *)
      Obs.Counters.incr t.oc_bypass_ovf;
    t.ext_visible.(u) <- (if bypassed then complete else wb + 1)
  end;
  if Debug.checking t.dbg then begin
    debug_check_issue t u e;
    Debug.on_issue t.dbg ~cycle:t.now ~beu:t.beu.(u) ~bypassed:!took_bypass e
  end;
  for k = t.child_off.(u) to t.child_off.(u + 1) - 1 do
    let c = t.child_uid.(k) in
    let via = Bytes.get t.child_via k <> '\000' in
    let visible = if via then t.int_visible.(u) else t.ext_visible.(u) in
    let visible =
      if visible = max_int then
        (* consumer reads a register this instruction does not publish
           (e.g. internal read of an I+E value resolved externally);
           fall back to the other copy *)
        min t.int_visible.(u) t.ext_visible.(u)
      else visible
    in
    let visible = if visible = max_int then complete else visible in
    schedule_wake t (max visible (t.now + 1)) c
  done;
  (* branch resolution releases its checkpoint *)
  if e.Trace.is_cond_branch && t.max_unresolved > 0 then
    Calq.add t.branch_resolve_at (max (complete + 1) (t.now + 1)) u;
  (* Braid dead-value early release: the in-flight external entry of a
     producer frees once the producer has completed and its last external
     reader (compiler liveness bits) has issued. Commit is the fallback
     release, so this only shortens residency. *)
  if t.is_braid then begin
      let maybe_release p =
        if
          t.events.(p).Trace.writes_ext
          && issued t p
          && Bytes.get t.ext_entry_freed p = '\000'
        then begin
          let r = t.last_ext_reader.(p) in
          let release_at =
            if r < 0 then Some (t.complete_cycle.(p) + 1)
            else if issued t r then
              Some (max t.complete_cycle.(p) t.issue_cycle.(r) + 1)
            else None
          in
          match release_at with
          | Some c -> Calq.add t.reg_free_at (max c (t.now + 1)) p
          | None -> ()
        end
      in
      maybe_release u;
      Array.iter (fun (p, via) -> if not via then maybe_release p) e.Trace.deps
  end

let can_dispatch t u =
  let e = t.events.(u) in
  let reg_ok = (not e.Trace.writes_ext) || t.free_regs >= 1 in
  let checkpoint_ok =
    t.max_unresolved = 0
    || (not e.Trace.is_cond_branch)
    || t.unresolved_branches < t.max_unresolved
  in
  let ok =
    t.alloc_left >= 1
    && t.src_left >= e.Trace.ext_src_reads
    && ((not e.Trace.writes_ext) || t.dst_left >= 1)
    && reg_ok
    && checkpoint_ok
    && ((not (e.Trace.is_load || e.Trace.is_store))
       || t.inflight_mem < t.lsq_limit)
    && t.dispatched_count - t.committed_count < t.inflight_limit
  in
  if not reg_ok then begin
    t.stall_regs <- t.stall_regs + 1;
    Obs.Counters.incr t.oc_ext_stall
  end;
  ok

let note_dispatch t u =
  let e = t.events.(u) in
  t.alloc_left <- t.alloc_left - 1;
  t.src_left <- t.src_left - e.Trace.ext_src_reads;
  if e.Trace.writes_ext then begin
    t.dst_left <- t.dst_left - 1;
    t.free_regs <- t.free_regs - 1
  end;
  if e.Trace.is_load || e.Trace.is_store then
    t.inflight_mem <- t.inflight_mem + 1;
  if e.Trace.is_cond_branch && t.max_unresolved > 0 then
    t.unresolved_branches <- t.unresolved_branches + 1;
  t.dispatched_count <- t.dispatched_count + 1;
  Obs.Counters.incr t.oc_dispatch;
  if e.Trace.writes_ext then Obs.Counters.incr t.oc_ext_alloc;
  Debug.on_dispatch t.dbg ~cycle:t.now ~beu:t.beu.(u) e;
  match t.trc with
  | None -> ()
  | Some tr ->
      Obs.Tracer.record tr
        (Obs.Tracer.Stage
           { cycle = t.now; uid = u; stage = Obs.Tracer.Dispatch; track = t.beu.(u) })

let commit_stage t =
  let budget = ref t.cfg.Config.commit_width in
  let continue_ = ref true in
  let tr = t.trc in
  while !continue_ && !budget > 0 && t.commit_idx < Array.length t.events do
    let u = t.commit_idx in
    if is_complete t u then begin
      let e = t.events.(u) in
      Obs.Counters.incr t.oc_commit;
      Debug.on_commit t.dbg ~cycle:t.now e;
      (match tr with
      | None -> ()
      | Some tr ->
          Obs.Tracer.record tr
            (Obs.Tracer.Stage
               { cycle = t.now; uid = u; stage = Obs.Tracer.Commit; track = t.beu.(u) }));
      (* stores drain to the data cache at commit (and, on a shared
         backside, through the coherence directory) *)
      if e.Trace.is_store then Mem_hier.drain_store t.hier e.Trace.addr;
      (* release the rename/in-flight entry at commit unless the braid
         dead-value path already released it *)
      if e.Trace.writes_ext && Bytes.get t.ext_entry_freed u = '\000' then begin
        Bytes.set t.ext_entry_freed u '\001';
        t.free_regs <- t.free_regs + 1;
        Obs.Counters.incr t.oc_ext_commit_rel;
        Debug.on_ext_release t.dbg ~cycle:t.now ~uid:u
      end;
      if e.Trace.is_load || e.Trace.is_store then
        t.inflight_mem <- t.inflight_mem - 1;
      t.committed_count <- t.committed_count + 1;
      t.commit_idx <- t.commit_idx + 1;
      decr budget
    end
    else continue_ := false
  done

let all_committed t = t.commit_idx >= Array.length t.events
let committed_count t = t.committed_count

type dispatch_block =
  | Block_none
  | Block_alloc
  | Block_rename
  | Block_regs
  | Block_checkpoint
  | Block_lsq
  | Block_inflight

let dispatch_block_reason t u =
  let e = t.events.(u) in
  if t.alloc_left < 1 then Block_alloc
  else if t.src_left < e.Trace.ext_src_reads
          || (e.Trace.writes_ext && t.dst_left < 1) then Block_rename
  else if
    e.Trace.writes_ext && t.free_regs < 1
    &&
    match t.cfg.Config.kind with
    | Config.In_order | Config.Dep_steer | Config.Ooo | Config.Cgooo -> true
    | Config.Braid_exec -> true
  then Block_regs
  else if
    t.cfg.Config.max_unresolved_branches > 0
    && e.Trace.is_cond_branch
    && t.unresolved_branches >= t.cfg.Config.max_unresolved_branches
  then Block_checkpoint
  else if
    (e.Trace.is_load || e.Trace.is_store)
    && t.inflight_mem >= t.cfg.Config.lsq_entries
  then Block_lsq
  else if t.dispatched_count - t.committed_count >= t.cfg.Config.inflight then
    Block_inflight
  else Block_none

let dispatch_block_name = function
  | Block_none -> "none"
  | Block_alloc -> "alloc-width"
  | Block_rename -> "rename-width"
  | Block_regs -> "ext-regs"
  | Block_checkpoint -> "checkpoint"
  | Block_lsq -> "lsq"
  | Block_inflight -> "inflight"

type activity = {
  ext_rf_reads : int;
  ext_rf_writes : int;
  int_rf_reads : int;
  int_rf_writes : int;
  bypass_values : int;
}

let activity (m : t) =
  let t = m in
  {
    ext_rf_reads = t.ext_rf_reads;
    ext_rf_writes = t.ext_rf_writes;
    int_rf_reads = t.int_rf_reads;
    int_rf_writes = t.int_rf_writes;
    bypass_values = t.bypass_values;
  }
