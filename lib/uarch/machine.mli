(** Shared timing-model state: in-flight instruction slots, dependence
    wakeup, register-file ports, bypass capacity, the external-register
    free list, the load-store queue, and in-order commit.

    The four execution cores ({!Exec_core}) own only their scheduling
    structure (queues/windows) and selection policy; everything they issue
    flows through {!do_issue} here, so port, bypass, latency and memory
    semantics are identical across paradigms.

    In-flight instructions are identified by their trace [uid]; their
    mutable state lives in flat parallel arrays inside the machine
    (struct-of-arrays), so creating a machine allocates a handful of
    arrays rather than one record per event and the per-cycle scheduler
    scans touch contiguous memory.

    The external register file is modeled as an in-flight value buffer
    (rename free list): an entry is allocated at dispatch for each
    external-writing instruction and released at commit. The braid core
    additionally releases entries early, at dead-value time — once the
    producer has completed and its last external reader (known to the
    compiler, conveyed by the braid ISA) has read it — which is what lets
    the paper's 8-entry external file keep up with a 256-entry one
    (Fig 6). *)

type mem_status =
  | Mem_blocked  (** an older store's address is still unknown *)
  | Mem_forward  (** youngest older same-address store forwards *)
  | Mem_cache  (** no conflict: access the data cache *)

(** Per-cycle bounded resource (register-file ports, bypass slots): a
    circular window of usage counters stamped with the cycle they count
    for. Exposed for unit tests; the machine wires [set_now] to its own
    clock every {!begin_cycle}. *)
module Rc : sig
  type t

  val create : int -> t
  (** [create limit] — at most [limit] units per cycle. *)

  val set_now : t -> int -> unit
  (** Publish the current cycle; counter slots stamped earlier become
      reclaimable. The clock must never move backwards. *)

  val used : t -> int -> int
  val available : t -> int -> int -> bool

  val take : t -> int -> int -> unit
  (** Unchecked reservation (the caller verified [available]). *)

  val try_take : t -> int -> int -> bool
  (** Reserve if available; never raises, even with a zero limit. *)

  val take_first_free : t -> int -> int -> int
  (** [take_first_free t c n] reserves [n] units at the first cycle
      [>= c] with room and returns that cycle. Raises [Invalid_argument]
      when [n] exceeds the limit (no cycle could ever satisfy it). *)
end

type t

val create :
  ?obs:Braid_obs.Sink.t ->
  ?dbg:Debug.t ->
  ?hier:Mem_hier.hierarchy ->
  Config.t ->
  Trace.t ->
  t
(** [hier] is the memory hierarchy the machine loads and stores through;
    absent, a private ({!Mem_hier.create_hierarchy}) one is built from
    the config — byte-identical to the pre-split behaviour. A CMP passes
    a hierarchy attached to a shared backside instead.

    With a live [obs] sink, the machine registers counters for dispatch /
    issue / commit instruction flow, external-file allocations,
    early (dead-value) and commit releases, register-shortage dispatch
    stalls, bypass uses and overflows, and the cache and predictor
    counters of the structures it creates; when a tracer is attached it
    additionally records per-instruction dispatch/commit stage crossings,
    issue-to-completion execution spans (with BEU track) and L1D-miss
    fills. With the default disabled sink every hook is a dead store or a
    [None] match — timing results are identical either way.

    With a live [dbg] sink ({!Debug.create}) the machine records the
    committed instruction stream and, when invariant checking is on,
    verifies external-file occupancy, bypass legality, wakeup timing and
    cross-braid internal-value isolation on every issue. [Debug.off] (the
    default) costs one pattern match per hook; the hooks never mutate
    machine state, so results are byte-identical with the monitor off. *)

val cfg : t -> Config.t

val obs_sink : t -> Braid_obs.Sink.t
(** The sink the machine was created with (for the execution cores). *)

val debug : t -> Debug.t
(** The debug sink the machine was created with ({!Debug.off} by
    default); execution cores use it for their own structural checks. *)

val num_slots : t -> int
(** Number of trace events; uids range over [0 .. num_slots - 1]. *)

val event : t -> int -> Trace.event
(** The trace event with this uid. *)

val now : t -> int
val begin_cycle : t -> unit
(** Advances the clock, applies due wakeups, resets per-cycle dispatch
    budgets. Call once per cycle before any stage. *)

val reg_ready : t -> int -> bool
(** All register producers visible. *)

val note_resident : t -> int -> int -> unit
(** [note_resident m u c] records that the execution core placed [u] in
    its scheduling cluster [c]. The machine then maintains {!ready_in}
    for that cluster; {!do_issue} clears the residency. *)

val ready_in : t -> int -> int
(** Resident, not-yet-issued instructions of cluster [c] whose registers
    are ready ({!reg_ready}). Lets a core's select loop skip clusters —
    and window tails — that cannot issue this cycle. *)

val is_complete : t -> int -> bool
(** Issued and past its completion cycle. *)

val issued : t -> int -> bool
val complete_cycle : t -> int -> int
(** [max_int] until the instruction issues. *)

val ext_visible : t -> int -> int
(** Cycle from which consumers can read the external result; [max_int]
    until scheduled (for the braid core's inter-cluster check). *)

val beu : t -> int -> int
(** BEU index assigned at dispatch (braid core), -1 otherwise. *)

val set_beu : t -> int -> int -> unit

val mem_ready : t -> int -> mem_status
(** Load ordering status; non-loads are always [Mem_cache]. Pure check —
    no cache state is touched. *)

val can_issue_ports : t -> int -> bool
(** Enough external register file read ports remain this cycle. *)

val do_issue : t -> int -> unit
(** Commits the issue at the current cycle: consumes read ports, computes
    the completion time (FU latency; cache or forwarding for loads),
    schedules writeback (write port), bypass, and consumer wakeups. The
    caller must have checked [reg_ready], [mem_ready <> Mem_blocked] and
    [can_issue_ports]; violating any of these raises [Invalid_argument]
    with a message naming the instruction uid and the current cycle. *)

val can_dispatch : t -> int -> bool
(** Front-end resource check at the current cycle: allocate width, rename
    source/destination bandwidth, external register availability, LSQ
    space, in-flight bound. *)

val note_dispatch : t -> int -> unit
(** Consumes the dispatch resources checked by [can_dispatch]. *)

val commit_stage : t -> unit
(** In-order commit of completed slots, up to the commit width; releases
    registers (conventional scheme), LSQ entries, and drains stores to the
    data cache. *)

val all_committed : t -> bool
val committed_count : t -> int

val hierarchy : t -> Mem_hier.hierarchy
val predictor : t -> Predictor.t

val stall_dispatch_regs : t -> int
(** Cycles × instructions dispatch stalled for lack of an external
    register (diagnostic). *)

type dispatch_block =
  | Block_none  (** not blocked by front-end resources (core is full) *)
  | Block_alloc
  | Block_rename
  | Block_regs
  | Block_checkpoint
  | Block_lsq
  | Block_inflight

val dispatch_block_reason : t -> int -> dispatch_block
(** Why [can_dispatch] would refuse this instruction right now — for the
    stall breakdown diagnostics. *)

val dispatch_block_name : dispatch_block -> string
(** Short stable label ("alloc-width", "ext-regs", ...) for stall-reason
    annotations in traces. *)

type activity = {
  ext_rf_reads : int;  (** external register file read accesses *)
  ext_rf_writes : int;
  int_rf_reads : int;  (** BEU-internal register file accesses *)
  int_rf_writes : int;
  bypass_values : int;  (** values that rode the bypass network *)
}

val activity : t -> activity
(** Structure-access counts accumulated over the run, feeding the
    complexity/energy comparison of §5.1. *)
