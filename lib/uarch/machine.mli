(** Shared timing-model state: in-flight instruction slots, dependence
    wakeup, register-file ports, bypass capacity, the external-register
    free list, the load-store queue, and in-order commit.

    The four execution cores ({!Exec_core}) own only their scheduling
    structure (queues/windows) and selection policy; everything they issue
    flows through {!do_issue} here, so port, bypass, latency and memory
    semantics are identical across paradigms.

    The external register file is modeled as an in-flight value buffer
    (rename free list): an entry is allocated at dispatch for each
    external-writing instruction and released at commit. The braid core
    additionally releases entries early, at dead-value time — once the
    producer has completed and its last external reader (known to the
    compiler, conveyed by the braid ISA) has read it — which is what lets
    the paper's 8-entry external file keep up with a 256-entry one
    (Fig 6). *)

type slot = {
  ev : Trace.event;
  mutable dispatched : bool;
  mutable issued : bool;
  mutable completed : bool;
  mutable committed : bool;
  mutable ready_deps : int;  (** producers not yet visible *)
  mutable issue_cycle : int;
  mutable complete_cycle : int;
  mutable ext_visible : int;  (** cycle from which consumers can read *)
  mutable int_visible : int;
  mutable ext_entry_freed : bool;  (** external-file entry released *)
  mutable beu : int;  (** BEU index (braid core), -1 otherwise *)
}

type mem_status =
  | Mem_blocked  (** an older store's address is still unknown *)
  | Mem_forward  (** youngest older same-address store forwards *)
  | Mem_cache  (** no conflict: access the data cache *)

type t

val create : ?obs:Braid_obs.Sink.t -> Config.t -> Trace.t -> t
(** With a live [obs] sink, the machine registers counters for dispatch /
    issue / commit instruction flow, external-file allocations,
    early (dead-value) and commit releases, register-shortage dispatch
    stalls, bypass uses and overflows, and the cache and predictor
    counters of the structures it creates; when a tracer is attached it
    additionally records per-instruction dispatch/commit stage crossings,
    issue-to-completion execution spans (with BEU track) and L1D-miss
    fills. With the default disabled sink every hook is a dead store or a
    [None] match — timing results are identical either way. *)

val cfg : t -> Config.t

val obs_sink : t -> Braid_obs.Sink.t
(** The sink the machine was created with (for the execution cores). *)

val num_slots : t -> int
val slot : t -> int -> slot

val now : t -> int
val begin_cycle : t -> unit
(** Advances the clock, applies due wakeups, resets per-cycle dispatch
    budgets. Call once per cycle before any stage. *)

val reg_ready : slot -> bool
(** All register producers visible. *)

val is_complete_slot : t -> slot -> bool
(** Issued and past its completion cycle. *)

val mem_ready : t -> slot -> mem_status
(** Load ordering status; non-loads are always [Mem_cache]. Pure check —
    no cache state is touched. *)

val can_issue_ports : t -> slot -> bool
(** Enough external register file read ports remain this cycle. *)

val do_issue : t -> slot -> unit
(** Commits the issue at the current cycle: consumes read ports, computes
    the completion time (FU latency; cache or forwarding for loads),
    schedules writeback (write port), bypass, and consumer wakeups. The
    caller must have checked [reg_ready], [mem_ready <> Mem_blocked] and
    [can_issue_ports]. *)

val can_dispatch : t -> slot -> bool
(** Front-end resource check at the current cycle: allocate width, rename
    source/destination bandwidth, external register availability, LSQ
    space, in-flight bound. *)

val note_dispatch : t -> slot -> unit
(** Consumes the dispatch resources checked by [can_dispatch]. *)

val commit_stage : t -> unit
(** In-order commit of completed slots, up to the commit width; releases
    registers (conventional scheme), LSQ entries, and drains stores to the
    data cache. *)

val all_committed : t -> bool
val committed_count : t -> int

val hierarchy : t -> Cache.hierarchy
val predictor : t -> Predictor.t

val stall_dispatch_regs : t -> int
(** Cycles × instructions dispatch stalled for lack of an external
    register (diagnostic). *)

type dispatch_block =
  | Block_none  (** not blocked by front-end resources (core is full) *)
  | Block_alloc
  | Block_rename
  | Block_regs
  | Block_checkpoint
  | Block_lsq
  | Block_inflight

val dispatch_block_reason : t -> slot -> dispatch_block
(** Why [can_dispatch] would refuse this slot right now — for the stall
    breakdown diagnostics. *)

val dispatch_block_name : dispatch_block -> string
(** Short stable label ("alloc-width", "ext-regs", ...) for stall-reason
    annotations in traces. *)

type activity = {
  ext_rf_reads : int;  (** external register file read accesses *)
  ext_rf_writes : int;
  int_rf_reads : int;  (** BEU-internal register file accesses *)
  int_rf_writes : int;
  bypass_values : int;  (** values that rode the bypass network *)
}

val activity : t -> activity
(** Structure-access counts accumulated over the run, feeding the
    complexity/energy comparison of §5.1. *)
