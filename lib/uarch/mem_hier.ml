module Obs = Braid_obs

(* The memory system behind the L1s. Solo machines get [Private] — the
   historical L2 + main memory, accessed in exactly the order the old
   monolithic hierarchy used, so timing is byte-identical. CMP machines
   share one [Shared] backside: a common L2 with an invalidation-based
   MSI directory over the attached cores' L1Ds. *)

type coh_stats = {
  invalidations : int;
  downgrades : int;
  writebacks : int;
  remote_hits : int;
}

let zero_coh =
  { invalidations = 0; downgrades = 0; writebacks = 0; remote_hits = 0 }

(* Directory entry per shared-L2 line. [owner >= 0] is a core holding the
   line Modified; [sharers] is a bitmask of cores that pulled the line
   in for reading (conservative: silent L1 evictions leave stale bits,
   which only cause harmless spurious invalidations later). Legality:
   an owned line has exactly its owner as sharer. *)
type line_state = { mutable owner : int; mutable sharers : int }

type shared = {
  s_l2 : Cache.t;
  s_memory_latency : int;
  s_dir : (int, line_state) Hashtbl.t;
  mutable s_l1ds : (int * Cache.t) list;  (* attached cores, for back-inval *)
  mutable s_now : int;  (* published by the CMP clock, for event tracing *)
  mutable s_invalidations : int;
  mutable s_downgrades : int;
  mutable s_writebacks : int;
  mutable s_remote_hits : int;
  c_inval : Obs.Counters.counter;
  c_downgrade : Obs.Counters.counter;
  c_writeback : Obs.Counters.counter;
  c_remote_hit : Obs.Counters.counter;
  s_trc : Obs.Tracer.t option;
}

type t =
  | Private of { p_l2 : Cache.t; p_memory_latency : int }
  | Shared of shared

type hierarchy = {
  l1i : Cache.t;
  l1d : Cache.t;
  backside : t;
  core : int;
  perfect_icache : bool;
  perfect_dcache : bool;
}

let create_hierarchy ?(obs = Obs.Sink.disabled) (m : Config.memory) =
  {
    l1i = Cache.create ~obs ~name:"l1i" m.Config.l1i;
    l1d = Cache.create ~obs ~name:"l1d" m.Config.l1d;
    backside =
      Private
        {
          p_l2 = Cache.create ~obs ~name:"l2" m.Config.l2;
          p_memory_latency = m.Config.memory_latency;
        };
    core = 0;
    perfect_icache = m.Config.perfect_icache;
    perfect_dcache = m.Config.perfect_dcache;
  }

let create_shared ?(obs = Obs.Sink.disabled) ~memory_latency
    (l2 : Config.cache_geometry) =
  {
    s_l2 = Cache.create ~obs ~name:"l2" l2;
    s_memory_latency = memory_latency;
    s_dir = Hashtbl.create 4096;
    s_l1ds = [];
    s_now = 0;
    s_invalidations = 0;
    s_downgrades = 0;
    s_writebacks = 0;
    s_remote_hits = 0;
    c_inval = Obs.Sink.counter obs "coh.invalidations";
    c_downgrade = Obs.Sink.counter obs "coh.downgrades";
    c_writeback = Obs.Sink.counter obs "coh.writebacks";
    c_remote_hit = Obs.Sink.counter obs "coh.remote_hits";
    s_trc = Obs.Sink.tracer obs;
  }

let attach ?(obs = Obs.Sink.disabled) ~core s (m : Config.memory) =
  let h =
    {
      l1i = Cache.create ~obs ~name:"l1i" m.Config.l1i;
      l1d = Cache.create ~obs ~name:"l1d" m.Config.l1d;
      backside = Shared s;
      core;
      perfect_icache = m.Config.perfect_icache;
      perfect_dcache = m.Config.perfect_dcache;
    }
  in
  if List.mem_assoc core s.s_l1ds then
    invalid_arg (Printf.sprintf "Mem_hier.attach: core %d already attached" core);
  s.s_l1ds <- s.s_l1ds @ [ (core, h.l1d) ];
  h

let set_now s cycle = s.s_now <- cycle

let dir_entry s line =
  match Hashtbl.find_opt s.s_dir line with
  | Some e -> e
  | None ->
      let e = { owner = -1; sharers = 0 } in
      Hashtbl.add s.s_dir line e;
      e

let record_coh s name track =
  match s.s_trc with
  | None -> ()
  | Some tr ->
      Obs.Tracer.record tr
        (Obs.Tracer.Span { name; cat = "coh"; track; start = s.s_now; dur = 1 })

(* Drop every L1D line of [core] covered by the shared-L2 line holding
   [addr] (L1 lines may be finer than L2 lines). *)
let back_invalidate s ~core addr =
  match List.assoc_opt core s.s_l1ds with
  | None -> ()
  | Some l1d ->
      let l2b = Cache.line_bytes s.s_l2 in
      let base = Cache.line_of s.s_l2 addr * l2b in
      let step = min l2b (Cache.line_bytes l1d) in
      let off = ref 0 in
      while !off < l2b do
        ignore (Cache.invalidate_line l1d (base + !off));
        off := !off + step
      done

(* Read miss reaching the shared L2: downgrade a remote Modified owner
   (it writes back and both keep the line Shared), then join the sharer
   set. The extra L2 latency models the owner's flush on the critical
   path of the requester. *)
let shared_read_miss_latency s ~core addr =
  let lat = ref (Cache.latency s.s_l2) in
  let hit = Cache.access s.s_l2 addr in
  if not hit then lat := !lat + s.s_memory_latency;
  let e = dir_entry s (Cache.line_of s.s_l2 addr) in
  let me = 1 lsl core in
  if hit && (e.sharers land lnot me <> 0 || (e.owner >= 0 && e.owner <> core))
  then begin
    s.s_remote_hits <- s.s_remote_hits + 1;
    Obs.Counters.incr s.c_remote_hit
  end;
  if e.owner >= 0 && e.owner <> core then begin
    s.s_downgrades <- s.s_downgrades + 1;
    s.s_writebacks <- s.s_writebacks + 1;
    Obs.Counters.incr s.c_downgrade;
    Obs.Counters.incr s.c_writeback;
    record_coh s "coh.downgrade" e.owner;
    lat := !lat + Cache.latency s.s_l2;
    e.owner <- -1
  end;
  e.sharers <- e.sharers lor me;
  !lat

(* Write (store drain) reaching the directory: invalidate every remote
   sharer's L1D copy, flush a remote owner, take ownership. Drain
   latency is off the critical path (stores retire at commit), so only
   the traffic is counted. *)
let shared_write s ~core addr =
  let e = dir_entry s (Cache.line_of s.s_l2 addr) in
  let me = 1 lsl core in
  if e.owner >= 0 && e.owner <> core then begin
    s.s_writebacks <- s.s_writebacks + 1;
    Obs.Counters.incr s.c_writeback
  end;
  let remote = e.sharers land lnot me in
  List.iter
    (fun (c, _) ->
      if remote land (1 lsl c) <> 0 then begin
        s.s_invalidations <- s.s_invalidations + 1;
        Obs.Counters.incr s.c_inval;
        record_coh s "coh.invalidate" c;
        back_invalidate s ~core:c addr
      end)
    s.s_l1ds;
  e.owner <- core;
  e.sharers <- me

(* The private arm preserves the historical access order exactly: L1
   access, then on miss one L2 access, then main memory. *)
let through h l1 addr =
  let lat = ref (Cache.latency l1) in
  if not (Cache.access l1 addr) then
    (match h.backside with
    | Private p ->
        lat := !lat + Cache.latency p.p_l2;
        if not (Cache.access p.p_l2 addr) then lat := !lat + p.p_memory_latency
    | Shared s -> lat := !lat + shared_read_miss_latency s ~core:h.core addr);
  !lat

let instr_latency h addr = if h.perfect_icache then 1 else through h h.l1i addr

let data_latency h addr =
  if h.perfect_dcache then Cache.latency h.l1d else through h h.l1d addr

let drain_store h addr =
  if not h.perfect_dcache then begin
    (if not (Cache.access h.l1d addr) then
       match h.backside with
       | Private p -> ignore (Cache.access p.p_l2 addr)
       | Shared s -> ignore (Cache.access s.s_l2 addr));
    match h.backside with
    | Private _ -> ()
    | Shared s -> shared_write s ~core:h.core addr
  end

let warm_back h addr =
  match h.backside with
  | Private p -> Cache.warm p.p_l2 addr
  | Shared s -> Cache.warm s.s_l2 addr

let warm_instr h addr =
  Cache.warm h.l1i addr;
  warm_back h addr

let warm_l2 h addr = warm_back h addr

let warm_data h addr =
  Cache.warm h.l1d addr;
  warm_back h addr

let l1i_stats h = Cache.stats h.l1i
let l1d_stats h = Cache.stats h.l1d

let l2_stats h =
  match h.backside with
  | Private p -> Cache.stats p.p_l2
  | Shared s -> Cache.stats s.s_l2

let shared_l2_stats s = Cache.stats s.s_l2

let coh_of_shared s =
  {
    invalidations = s.s_invalidations;
    downgrades = s.s_downgrades;
    writebacks = s.s_writebacks;
    remote_hits = s.s_remote_hits;
  }

let coh h =
  match h.backside with Private _ -> zero_coh | Shared s -> coh_of_shared s

(* Legality scan for the invariant monitor: a Modified line must be held
   by its owner alone — every other attached L1D must have dropped it,
   and the sharer set must be exactly the owner's bit. *)
let coherence_violations s =
  let problems = ref [] in
  Hashtbl.iter
    (fun line e ->
      if e.owner >= 0 then begin
        if e.sharers <> 1 lsl e.owner then
          problems :=
            Printf.sprintf
              "line %#x: owner %d (M) but sharer mask %#x is not exactly the \
               owner"
              line e.owner e.sharers
            :: !problems;
        let l2b = Cache.line_bytes s.s_l2 in
        let base = line * l2b in
        List.iter
          (fun (c, l1d) ->
            if c <> e.owner then begin
              let step = min l2b (Cache.line_bytes l1d) in
              let off = ref 0 in
              while !off < l2b do
                if Cache.probe l1d (base + !off) then
                  problems :=
                    Printf.sprintf
                      "line %#x: owned M by core %d but core %d's L1D still \
                       holds %#x"
                      line e.owner c (base + !off)
                    :: !problems;
                off := !off + step
              done
            end)
          s.s_l1ds
      end)
    s.s_dir;
  List.rev !problems
