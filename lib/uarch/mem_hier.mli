(** The memory system behind the per-core L1s.

    A {!hierarchy} bundles a core's private L1I/L1D with a backside
    ({!t}): either [Private] — the historical per-machine L2 + main
    memory, accessed in exactly the order the old monolithic hierarchy
    used, so solo timing is byte-identical — or [Shared] — one L2 common
    to all attached cores with an invalidation-based MSI directory:

    - a read miss that finds a remote Modified owner downgrades it
      (owner writes back, both keep the line Shared) and pays one extra
      L2 latency for the flush;
    - a store drain invalidates every remote sharer's L1D copy
      (back-invalidation) and takes Modified ownership;
    - sharer sets are conservative — silent L1 evictions leave stale
      bits, which only cause harmless spurious invalidations.

    Instruction fetches bypass the directory (code is read-only). *)

type t
(** A backside: private L2 + memory, or the shared coherent L2. *)

type shared
(** The shared backside, created once per CMP and attached per core. *)

type hierarchy
(** One core's view: private L1I/L1D over a backside. *)

val create_hierarchy : ?obs:Braid_obs.Sink.t -> Config.memory -> hierarchy
(** The solo (private-backside) hierarchy; level counters are registered
    as ["l1i.*"], ["l1d.*"], ["l2.*"]. Byte-identical in timing to the
    pre-split monolithic hierarchy. *)

val create_shared :
  ?obs:Braid_obs.Sink.t ->
  memory_latency:int ->
  Config.cache_geometry ->
  shared
(** The shared L2 + directory. A live [obs] sink registers ["l2.*"] and
    the coherence-traffic counters ["coh.invalidations"],
    ["coh.downgrades"], ["coh.writebacks"], ["coh.remote_hits"]; an
    attached tracer additionally receives one ["coh"]-category span per
    invalidation/downgrade (track = the victim/owner core). *)

val attach :
  ?obs:Braid_obs.Sink.t -> core:int -> shared -> Config.memory -> hierarchy
(** [attach ~core s m] builds core [core]'s L1s from [m] over the shared
    backside and registers its L1D for back-invalidation. [m]'s [l2]
    geometry is ignored (the shared L2 was fixed at {!create_shared}).
    Raises [Invalid_argument] if the core id is already attached. *)

val set_now : shared -> int -> unit
(** Publish the CMP global clock, used only to timestamp coherence trace
    events. *)

val instr_latency : hierarchy -> int -> int
(** Fetch latency for the line containing a byte address: the L1I latency
    on a hit, plus L2/memory on misses. 1 when the configuration has a
    perfect I-cache. *)

val data_latency : hierarchy -> int -> int
(** Load-to-use latency for a data access, analogous; on a shared
    backside this performs the coherent read (downgrading a remote
    owner). *)

val drain_store : hierarchy -> int -> unit
(** Store drain at commit: fills L1D/L2 (latency is off the critical
    path) and, on a shared backside, performs the directory write —
    remote invalidations and ownership. No-op with a perfect D-cache. *)

val warm_instr : hierarchy -> int -> unit
(** Pre-fills the L1I and the backside L2 with the line of a code
    address, without touching hit/miss statistics. *)

val warm_l2 : hierarchy -> int -> unit
(** Pre-fills the backside L2 with a data line, without statistics. *)

val warm_data : hierarchy -> int -> unit
(** Pre-fills the L1D and backside L2 with a data line, without
    statistics (sampled-simulation warm-up replay). *)

val l1i_stats : hierarchy -> int * int
val l1d_stats : hierarchy -> int * int

val l2_stats : hierarchy -> int * int
(** Backside L2 [(hits, misses)] — the shared L2's totals when attached
    to one. *)

val shared_l2_stats : shared -> int * int

type coh_stats = {
  invalidations : int;  (** remote L1D copies dropped by stores *)
  downgrades : int;  (** M owners demoted to S by remote reads *)
  writebacks : int;  (** dirty lines flushed (downgrade or steal) *)
  remote_hits : int;  (** shared-L2 hits on lines another core fetched *)
}

val zero_coh : coh_stats

val coh : hierarchy -> coh_stats
(** All zero on a private backside. *)

val coh_of_shared : shared -> coh_stats

val coherence_violations : shared -> string list
(** Directory-legality scan: a Modified line must be held by its owner
    alone (sharer mask = owner bit, no other attached L1D holds any of
    its bytes). Empty = legal. For the invariant monitor / fuzz. *)
