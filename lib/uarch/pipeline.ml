(* The solo entry point: build one stepable core over its private memory
   hierarchy and run it to completion. The whole cycle loop lives in
   [Core]; this wrapper exists so every historical caller keeps its
   signature (and its byte-identical results). *)

type stalls = Core.stalls = {
  fetch_redirect : int;
  fetch_icache : int;
  dispatch_core : int;
  dispatch_frontend : int;
}

type result = Core.result = {
  config_name : string;
  instructions : int;
  cycles : int;
  ipc : float;
  branch_lookups : int;
  branch_mispredicts : int;
  l1i_misses : int;
  l1d_misses : int;
  l2_misses : int;
  dispatch_stall_regs : int;
  faults : int;
  activity : Machine.activity;
  stalls : stalls;
  avg_occupancy : float;
}

exception Deadlock = Core.Deadlock

let run ?obs ?dbg ?warm_data ?prewarm ?measure_from (cfg : Config.t)
    (trace : Trace.t) =
  let c =
    try Core.create ?obs ?dbg ?warm_data ?prewarm ?measure_from cfg trace
    with Invalid_argument msg ->
      (* keep the historical error prefix for callers matching on it *)
      invalid_arg
        (match String.index_opt msg ':' with
        | Some i -> "Pipeline.run" ^ String.sub msg i (String.length msg - i)
        | None -> msg)
  in
  while not (Core.finished c) do
    Core.step c
  done;
  Core.result c

let speedup = Core.speedup
