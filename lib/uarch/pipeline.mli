(** The full pipeline: fetch (I-cache + branch prediction), dispatch
    (allocate/rename budgets, register availability, LSQ), the execution
    core, and in-order commit — driven cycle by cycle over an
    execution-derived trace.

    Branch handling: direction predictions are made at fetch against the
    trace's real outcomes; a misprediction stops instruction supply until
    the branch executes, plus the configured minimum penalty — wrong-path
    work is modeled as this bubble. Arithmetic faults serialize the
    pipeline (drain to the checkpoint, handle, resume), per §3.4. *)

type stalls = Core.stalls = {
  fetch_redirect : int;  (** cycles fetch waited on a mispredicted branch *)
  fetch_icache : int;  (** cycles fetch waited on an I-cache fill *)
  dispatch_core : int;  (** cycles the execution core refused dispatch *)
  dispatch_frontend : int;  (** cycles a front-end resource refused it *)
}

type result = Core.result = {
  config_name : string;
  instructions : int;
  cycles : int;
  ipc : float;
  branch_lookups : int;
  branch_mispredicts : int;
  l1i_misses : int;
  l1d_misses : int;
  l2_misses : int;
  dispatch_stall_regs : int;
  faults : int;
  activity : Machine.activity;  (** structure-access counts (§5.1) *)
  stalls : stalls;
  avg_occupancy : float;  (** mean instructions resident in the core *)
}

exception Deadlock of string
(** The same exception as {!Core.Deadlock} (rebound, not redeclared).
    Raised when no forward progress happens for an implausibly long time —
    a simulator bug, surfaced loudly rather than silently looping. *)

val run :
  ?obs:Braid_obs.Sink.t ->
  ?dbg:Debug.t ->
  ?warm_data:int list ->
  ?prewarm:Trace.t ->
  ?measure_from:int ->
  Config.t ->
  Trace.t ->
  result
(** [dbg] attaches the microarchitectural invariant monitor / commit
    recorder ({!Debug.create}); the default {!Debug.off} costs one
    pattern match per hook and leaves every result byte-identical.

    [warm_data] lists byte addresses of the program's initial data image;
    their lines are pre-filled into the L2 (and all code lines into
    L1I/L2) so the measured window behaves like a steady-state snapshot
    rather than a cold start.

    [prewarm] is a sampled-simulation warm-up window: its events are
    replayed into the caches (code and data lines) and the branch
    predictor before timing starts, without touching any statistics.
    Absent (the default), results are byte-identical to before the
    parameter existed.

    [measure_from] is detailed warm-up for sampled simulation: the whole
    trace is simulated, but the result reports only the suffix starting
    at that uid — [instructions] is the suffix length and [cycles] and
    every counter subtract their values at the cycle the last warm-up
    instruction committed. Commit-to-commit deltas telescope to the full
    run's cycle count over contiguous intervals, so windowed measurement
    carries no systematic pipeline-fill or drain bias, and the suffix
    executes under real pipeline, cache, predictor and register-lifetime
    state. Raises [Invalid_argument] when outside [0, length).

    With a live [obs] sink the run registers fetch/stall counters and a
    core-occupancy histogram on top of the machine's own counters
    ({!Machine.create}); attach a tracer to the sink before calling to
    additionally capture per-cycle stage, stall and cache-miss events.
    The default disabled sink costs nothing and changes no results. *)

val speedup : result -> result -> float
(** [speedup base other] = cycles(base) / cycles(other): how much faster
    [other] finishes the same program. *)
