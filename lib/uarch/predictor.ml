let history_bits = 64
let table_entries = 512

(* Jiménez & Lin's training threshold for this history length. *)
let theta = int_of_float ((1.93 *. float_of_int history_bits) +. 14.0)
let weight_clamp = 127

(* gshare geometry *)
let gshare_entries = 4096
let gshare_history_bits = 12

module Obs = Braid_obs

type t = {
  kind : Config.predictor_kind;
  weights : int array array;  (* [entry].[history_bits + 1], slot 0 = bias *)
  history : bool array;
  mutable head : int;  (* circular history head *)
  (* gshare state *)
  counters : int array;  (* 2-bit saturating counters *)
  mutable ghist : int;  (* global history register *)
  mutable lookups : int;
  mutable mispredicts : int;
  (* observability handles; dummies when the sink is disabled *)
  c_lookups : Obs.Counters.counter;
  c_mispredicts : Obs.Counters.counter;
}

let create ?(obs = Obs.Sink.disabled) (cfg : Config.t) =
  {
    kind = cfg.Config.predictor;
    weights = Array.make_matrix table_entries (history_bits + 1) 0;
    history = Array.make history_bits false;
    head = 0;
    counters = Array.make gshare_entries 1 (* weakly not-taken *);
    ghist = 0;
    lookups = 0;
    mispredicts = 0;
    c_lookups = Obs.Sink.counter obs "predictor.lookups";
    c_mispredicts = Obs.Sink.counter obs "predictor.mispredicts";
  }

let gshare_step ~stats t ~pc ~taken =
  let idx = ((pc lsr 2) lxor t.ghist) land (gshare_entries - 1) in
  let c = t.counters.(idx) in
  let predicted = c >= 2 in
  let correct = predicted = taken in
  if stats && not correct then begin
    t.mispredicts <- t.mispredicts + 1;
    Obs.Counters.incr t.c_mispredicts
  end;
  t.counters.(idx) <- (if taken then min 3 (c + 1) else max 0 (c - 1));
  t.ghist <- ((t.ghist lsl 1) lor (if taken then 1 else 0)) land ((1 lsl gshare_history_bits) - 1);
  correct

let step ~stats t ~pc ~taken =
  if stats then begin
    t.lookups <- t.lookups + 1;
    Obs.Counters.incr t.c_lookups
  end;
  if t.kind = Config.Perfect_prediction then true
  else if t.kind = Config.Gshare then gshare_step ~stats t ~pc ~taken
  else begin
    let idx = (pc lsr 2) land (table_entries - 1) in
    let w = t.weights.(idx) in
    let sum = ref w.(0) in
    for i = 0 to history_bits - 1 do
      let h = t.history.((t.head + i) mod history_bits) in
      sum := !sum + (if h then w.(i + 1) else -w.(i + 1))
    done;
    let predicted = !sum >= 0 in
    let correct = predicted = taken in
    if stats && not correct then begin
      t.mispredicts <- t.mispredicts + 1;
      Obs.Counters.incr t.c_mispredicts
    end;
    (* train on mispredict or low confidence *)
    if (not correct) || abs !sum <= theta then begin
      let clamp v = max (-weight_clamp) (min weight_clamp v) in
      w.(0) <- clamp (w.(0) + if taken then 1 else -1);
      for i = 0 to history_bits - 1 do
        let h = t.history.((t.head + i) mod history_bits) in
        let agree = h = taken in
        w.(i + 1) <- clamp (w.(i + 1) + if agree then 1 else -1)
      done
    end;
    (* shift history *)
    t.head <- (t.head + history_bits - 1) mod history_bits;
    t.history.(t.head) <- taken;
    correct
  end

let predict_and_train t ~pc ~taken = step ~stats:true t ~pc ~taken
let warm t ~pc ~taken = ignore (step ~stats:false t ~pc ~taken)

let lookups t = t.lookups
let mispredicts t = t.mispredicts

let accuracy t =
  if t.lookups = 0 then 1.0
  else 1.0 -. (float_of_int t.mispredicts /. float_of_int t.lookups)
