(** Branch direction prediction.

    The paper's front end uses a perceptron predictor with a 64-bit global
    history and a 512-entry weight table (Table 4); a gshare predictor
    (4K two-bit counters, 12-bit global history) is provided for
    comparison, and a perfect predictor backs the Fig 1 limit study. Targets are assumed perfect (ideal BTB):
    only direction mispredictions cost cycles. *)

type t

val create : ?obs:Braid_obs.Sink.t -> Config.t -> t
(** With a live [obs] sink, registers ["predictor.lookups"] /
    ["predictor.mispredicts"] counters mirroring {!lookups} /
    {!mispredicts}. *)

val predict_and_train : t -> pc:int -> taken:bool -> bool
(** Returns whether the prediction matched the actual outcome, and trains
    the predictor. Perfect predictors always match. *)

val warm : t -> pc:int -> taken:bool -> unit
(** Trains on a branch outcome without touching lookup/mispredict
    statistics (sampled-simulation warm-up replay). *)

val lookups : t -> int
val mispredicts : t -> int

val accuracy : t -> float
(** 1.0 when no lookups have happened. *)
