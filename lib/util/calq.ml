(* Calendar queue over int events: a power-of-two wheel of growable int
   buckets indexed by [cycle land mask]. The simulator schedules only a
   bounded distance ahead (max FU/memory latency plus port scans), so one
   bucket holds entries of at most one cycle at a time; a collision between
   two live cycles doubles the wheel instead of corrupting the schedule.
   Bucket storage is retained across drains, so steady-state stepping
   allocates nothing. *)

type t = {
  mutable mask : int;  (* wheel size - 1; size is a power of two *)
  mutable bucket : int array array;
  mutable len : int array;  (* used entries per slot *)
  mutable cycle : int array;  (* cycle a non-empty slot holds; -1 = empty *)
  mutable count : int;  (* scheduled entries over the whole wheel *)
}

let round_pow2 n =
  let rec go v = if v >= n then v else go (v * 2) in
  go 1

let create ~horizon =
  if horizon <= 0 then invalid_arg "Calq.create: horizon must be positive";
  let size = round_pow2 horizon in
  {
    mask = size - 1;
    bucket = Array.make size [||];
    len = Array.make size 0;
    cycle = Array.make size (-1);
    count = 0;
  }

let horizon t = t.mask + 1
let length t = t.count
let is_empty t = t.count = 0

let push_entry t i v =
  let b = t.bucket.(i) in
  let n = t.len.(i) in
  if n = Array.length b then begin
    (* grow this bucket; capacity is kept for later cycles *)
    let nb = Array.make (max 4 (2 * n)) 0 in
    Array.blit b 0 nb 0 n;
    t.bucket.(i) <- nb;
    nb.(n) <- v
  end
  else b.(n) <- v;
  t.len.(i) <- n + 1;
  t.count <- t.count + 1

(* Double the wheel until every scheduled cycle lands in its own slot.
   Entries carry no cycle of their own — the slot's [cycle] tag does — so
   re-adding is mechanical. *)
let rec add t c v =
  if c < 0 then invalid_arg "Calq.add: negative cycle";
  let i = c land t.mask in
  if t.len.(i) = 0 then begin
    t.cycle.(i) <- c;
    push_entry t i v
  end
  else if t.cycle.(i) = c then push_entry t i v
  else begin
    grow t;
    add t c v
  end

and grow t =
  let old_bucket = t.bucket and old_len = t.len and old_cycle = t.cycle in
  let size = 2 * (t.mask + 1) in
  t.mask <- size - 1;
  t.bucket <- Array.make size [||];
  t.len <- Array.make size 0;
  t.cycle <- Array.make size (-1);
  t.count <- 0;
  Array.iteri
    (fun i b ->
      for j = 0 to old_len.(i) - 1 do
        add t old_cycle.(i) b.(j)
      done)
    old_bucket

let drain t c f =
  let i = c land t.mask in
  let n = t.len.(i) in
  if n > 0 && t.cycle.(i) = c then begin
    let b = t.bucket.(i) in
    (* release the slot before the callbacks so [f] may schedule ahead
       (never for the cycle being drained) *)
    t.len.(i) <- 0;
    t.cycle.(i) <- -1;
    t.count <- t.count - n;
    for j = 0 to n - 1 do
      f b.(j)
    done
  end

let clear t =
  Array.fill t.len 0 (Array.length t.len) 0;
  Array.fill t.cycle 0 (Array.length t.cycle) (-1);
  t.count <- 0
