(** Calendar queue: int events scheduled on absolute cycles.

    A power-of-two wheel of growable int buckets indexed by
    [cycle mod wheel size]. Designed for cycle-level simulators that
    schedule a bounded distance into the future and drain every cycle in
    order: each bucket holds the events of at most one live cycle, and a
    collision between two distinct live cycles doubles the wheel (the
    steady state allocates nothing — bucket capacity is retained across
    drains).

    Unlike a [Hashtbl]-bucketed schedule, adding and draining never box
    keys, never hash, and never cons. *)

type t

val create : horizon:int -> t
(** A wheel of at least [horizon] slots (rounded up to a power of two).
    [horizon] should cover the maximum scheduling distance (longest
    latency); an undersized wheel only costs growth, not correctness.
    Raises [Invalid_argument] when [horizon <= 0]. *)

val add : t -> int -> int -> unit
(** [add t cycle v] schedules the event [v] for [cycle]. Raises
    [Invalid_argument] on a negative cycle. *)

val drain : t -> int -> (int -> unit) -> unit
(** [drain t cycle f] applies [f] to every event scheduled for exactly
    [cycle] (in insertion order) and empties that bucket. Events of other
    cycles are untouched. [f] may [add] events for later cycles, but must
    not add for the cycle being drained. *)

val horizon : t -> int
(** Current wheel size (slots). *)

val length : t -> int
(** Scheduled events across all cycles. *)

val is_empty : t -> bool

val clear : t -> unit
(** Forget all scheduled events; keeps the wheel and bucket storage. *)
