type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Error of int * string

let fail pos msg = raise (Error (pos, msg))

type state = { src : string; mutable pos : int }

let peek s = if s.pos < String.length s.src then Some s.src.[s.pos] else None

let skip_ws s =
  while
    s.pos < String.length s.src
    && match s.src.[s.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    s.pos <- s.pos + 1
  done

let expect s c =
  match peek s with
  | Some c' when c' = c -> s.pos <- s.pos + 1
  | _ -> fail s.pos (Printf.sprintf "expected %C" c)

let literal s word v =
  let n = String.length word in
  if s.pos + n <= String.length s.src && String.sub s.src s.pos n = word then begin
    s.pos <- s.pos + n;
    v
  end
  else fail s.pos (Printf.sprintf "expected %s" word)

let parse_string s =
  expect s '"';
  let b = Buffer.create 16 in
  let rec go () =
    if s.pos >= String.length s.src then fail s.pos "unterminated string";
    let c = s.src.[s.pos] in
    s.pos <- s.pos + 1;
    match c with
    | '"' -> Buffer.contents b
    | '\\' -> (
        if s.pos >= String.length s.src then fail s.pos "unterminated escape";
        let e = s.src.[s.pos] in
        s.pos <- s.pos + 1;
        match e with
        | '"' | '\\' | '/' -> Buffer.add_char b e; go ()
        | 'b' -> Buffer.add_char b '\b'; go ()
        | 'f' -> Buffer.add_char b '\012'; go ()
        | 'n' -> Buffer.add_char b '\n'; go ()
        | 'r' -> Buffer.add_char b '\r'; go ()
        | 't' -> Buffer.add_char b '\t'; go ()
        | 'u' ->
            if s.pos + 4 > String.length s.src then fail s.pos "truncated \\u escape";
            let hex = String.sub s.src s.pos 4 in
            let code =
              match int_of_string_opt ("0x" ^ hex) with
              | Some c -> c
              | None -> fail s.pos "invalid \\u escape"
            in
            s.pos <- s.pos + 4;
            (* encode the code point as UTF-8 (surrogates are kept verbatim:
               good enough for validation round-trips of ASCII traces) *)
            if code < 0x80 then Buffer.add_char b (Char.chr code)
            else if code < 0x800 then begin
              Buffer.add_char b (Char.chr (0xc0 lor (code lsr 6)));
              Buffer.add_char b (Char.chr (0x80 lor (code land 0x3f)))
            end
            else begin
              Buffer.add_char b (Char.chr (0xe0 lor (code lsr 12)));
              Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3f)));
              Buffer.add_char b (Char.chr (0x80 lor (code land 0x3f)))
            end;
            go ()
        | _ -> fail (s.pos - 1) "invalid escape")
    | c when Char.code c < 0x20 -> fail (s.pos - 1) "unescaped control character"
    | c -> Buffer.add_char b c; go ()
  in
  go ()

let parse_number s =
  let start = s.pos in
  let is_num_char c =
    match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
  in
  while s.pos < String.length s.src && is_num_char s.src.[s.pos] do
    s.pos <- s.pos + 1
  done;
  let text = String.sub s.src start (s.pos - start) in
  match float_of_string_opt text with
  | Some f -> Num f
  | None -> fail start (Printf.sprintf "invalid number %S" text)

let rec parse_value s =
  skip_ws s;
  match peek s with
  | None -> fail s.pos "unexpected end of input"
  | Some '{' ->
      expect s '{';
      skip_ws s;
      if peek s = Some '}' then begin
        s.pos <- s.pos + 1;
        Obj []
      end
      else begin
        let rec fields acc =
          skip_ws s;
          let k = parse_string s in
          skip_ws s;
          expect s ':';
          let v = parse_value s in
          skip_ws s;
          match peek s with
          | Some ',' ->
              s.pos <- s.pos + 1;
              fields ((k, v) :: acc)
          | Some '}' ->
              s.pos <- s.pos + 1;
              List.rev ((k, v) :: acc)
          | _ -> fail s.pos "expected ',' or '}'"
        in
        Obj (fields [])
      end
  | Some '[' ->
      expect s '[';
      skip_ws s;
      if peek s = Some ']' then begin
        s.pos <- s.pos + 1;
        Arr []
      end
      else begin
        let rec elems acc =
          let v = parse_value s in
          skip_ws s;
          match peek s with
          | Some ',' ->
              s.pos <- s.pos + 1;
              elems (v :: acc)
          | Some ']' ->
              s.pos <- s.pos + 1;
              List.rev (v :: acc)
          | _ -> fail s.pos "expected ',' or ']'"
        in
        Arr (elems [])
      end
  | Some '"' -> Str (parse_string s)
  | Some 't' -> literal s "true" (Bool true)
  | Some 'f' -> literal s "false" (Bool false)
  | Some 'n' -> literal s "null" Null
  | Some ('-' | '0' .. '9') -> parse_number s
  | Some c -> fail s.pos (Printf.sprintf "unexpected %C" c)

let parse src =
  let s = { src; pos = 0 } in
  match parse_value s with
  | v ->
      skip_ws s;
      if s.pos < String.length src then
        Result.Error (Printf.sprintf "trailing bytes at offset %d" s.pos)
      else Ok v
  | exception Error (pos, msg) ->
      Result.Error (Printf.sprintf "at offset %d: %s" pos msg)

let parse_exn src =
  match parse src with Ok v -> v | Result.Error msg -> failwith ("Json.parse: " ^ msg)

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None

let escape_string str =
  let b = Buffer.create (String.length str + 2) in
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    str;
  Buffer.add_char b '"';
  Buffer.contents b

let rec to_string = function
  | Null -> "null"
  | Bool true -> "true"
  | Bool false -> "false"
  | Num f ->
      if not (Float.is_finite f) then "null"
      else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
      else Printf.sprintf "%.17g" f
  | Str s -> escape_string s
  | Arr xs -> "[" ^ String.concat "," (List.map to_string xs) ^ "]"
  | Obj fields ->
      "{"
      ^ String.concat ","
          (List.map (fun (k, v) -> escape_string k ^ ":" ^ to_string v) fields)
      ^ "}"

(* --- string-level emitters ---

   The experiment/perf/sweep documents are built as literal fragments (so
   integral floats print as "1.0", diffing cleanly across runs) rather
   than through the tree; these helpers are the single copy of that
   convention, shared by Report, Perf, Frontier and the DSE cache. *)

let float_lit v =
  if not (Float.is_finite v) then "null"
  else if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.1f" v
  else Printf.sprintf "%.9g" v

let list_lit f xs = "[" ^ String.concat "," (List.map f xs) ^ "]"

let obj_lit fields =
  "{"
  ^ String.concat ","
      (List.map (fun (k, v) -> escape_string k ^ ":" ^ v) fields)
  ^ "}"

(* accessor helpers over the tree, shared by every document reader *)

let str_member key doc =
  match member key doc with Some (Str s) -> Some s | _ -> None

let int_member key doc =
  match member key doc with
  | Some (Num f) when Float.is_integer f && Float.abs f < 1e15 ->
      Some (int_of_float f)
  | _ -> None
