(** The tree's one JSON implementation: a minimal self-contained parser
    and printer, plus the string-level emitters the experiment / perf /
    sweep documents are written with. Everything that reads or writes
    JSON — the Chrome exporter, the experiment reports, the DSE cache,
    the [braidsim serve] wire protocol, the test suite and the CI smoke
    checks — goes through this module; there is no external JSON
    dependency and no second implementation. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val parse : string -> (t, string) result
(** Strict: the whole input must be one JSON value (plus whitespace).
    The error mentions the byte offset. *)

val parse_exn : string -> t
(** Raises [Failure] with the parse error. *)

val member : string -> t -> t option
(** Field lookup in an [Obj]; [None] elsewhere. *)

val to_string : t -> string
(** Serializer (compact); [parse (to_string v)] round-trips. NaN and
    infinities serialize as [null]. *)

val escape_string : string -> string
(** The quoted, escaped JSON form of a string literal. *)

(** {2 String-level emitters}

    The experiment/perf/sweep documents are assembled as literal string
    fragments (integral floats print as ["1.0"], so trajectories diff
    cleanly) rather than through the tree. *)

val float_lit : float -> string
(** NaN/infinity become [null]; integral values print as [x.0]. *)

val list_lit : ('a -> string) -> 'a list -> string
val obj_lit : (string * string) list -> string

(** {2 Tree accessors} *)

val str_member : string -> t -> string option
(** [member] restricted to [Str]. *)

val int_member : string -> t -> int option
(** [member] restricted to integral [Num]s within exact-float range. *)
