(* Paged sparse memory: 4 KiB pages (512 x int64 words) in a small table,
   with a direct-mapped page cache in front. The emulator's access stream
   is strongly page-local (stencils, streams, hash tables) but often
   alternates between a handful of regions (pointer chases, two-array
   stencils), so the cache keeps [cache_slots] pages indexed by the low
   bits of the page number: the common load/store touches no hash and
   allocates nothing; a page is materialised on its first store.

   Pages are int64 bigarrays rather than int64 arrays so that the compiled
   emulator's closures can read and write words through the [page_get]/
   [page_set] intrinsics without boxing: an [int64 array] store would box
   the value at the call boundary (one minor allocation per store). *)

let page_bytes = 4096
let words_per_page = page_bytes / 8
let cache_slots = 256

type page = (int64, Bigarray.int64_elt, Bigarray.c_layout) Bigarray.Array1.t

external page_get : page -> int -> int64 = "%caml_ba_unsafe_ref_1"
external page_set : page -> int -> int64 -> unit = "%caml_ba_unsafe_set_1"

let fresh_page () : page =
  let p = Bigarray.Array1.create Bigarray.int64 Bigarray.c_layout words_per_page in
  Bigarray.Array1.fill p 0L;
  p

(* Shared all-zero page standing in for absent pages on the load path (and
   as the negative entry in the cache): reads through it are 0, and
   [page_for_store] never returns it, so it is never written. *)
let zero_page : page = fresh_page ()

type t = {
  pages : (int, page) Hashtbl.t;
  cache_idx : int array;  (* page number cached per slot; -1 = empty *)
  cache_page : page array;
}

let create () =
  {
    pages = Hashtbl.create 64;
    cache_idx = Array.make cache_slots (-1);
    cache_page = Array.make cache_slots zero_page;
  }

let page_of_addr addr = addr lsr 12
let word_index addr = (addr lsr 3) land (words_per_page - 1)

let check_addr addr =
  if addr < 0 then invalid_arg "Paged_mem: negative address";
  if addr land 7 <> 0 then invalid_arg "Paged_mem: unaligned address"

let find t idx =
  let slot = idx land (cache_slots - 1) in
  if Array.unsafe_get t.cache_idx slot = idx then
    Array.unsafe_get t.cache_page slot
  else
    match Hashtbl.find_opt t.pages idx with
    | Some p ->
        Array.unsafe_set t.cache_idx slot idx;
        Array.unsafe_set t.cache_page slot p;
        p
    | None ->
        (* negative entries are cached too: loads of never-written pages
           (sparse pointer chases) would otherwise hash on every access;
           a later store to the page replaces the entry *)
        Array.unsafe_set t.cache_idx slot idx;
        Array.unsafe_set t.cache_page slot zero_page;
        zero_page

let materialise t idx =
  let p = fresh_page () in
  Hashtbl.add t.pages idx p;
  let slot = idx land (cache_slots - 1) in
  Array.unsafe_set t.cache_idx slot idx;
  Array.unsafe_set t.cache_page slot p;
  p

let page_for_load t addr = find t (page_of_addr addr)

let page_for_store t addr =
  let idx = page_of_addr addr in
  let p = find t idx in
  if p != zero_page then p else materialise t idx

let load_validated t addr = page_get (page_for_load t addr) (word_index addr)

let store_validated t addr v =
  page_set (page_for_store t addr) (word_index addr) v

let load t addr =
  check_addr addr;
  load_validated t addr

let store t addr v =
  check_addr addr;
  store_validated t addr v

(* Snapshots are deep copies into plain int64 arrays: page contents are
   duplicated both when the snapshot is taken and when it is restored, so
   neither later stores to the live memory nor stores after a restore can
   reach through. Pages are kept sorted by index so equal memories yield
   structurally equal snapshots. *)
type snapshot = (int * int64 array) array

let snapshot t : snapshot =
  let items =
    Hashtbl.fold
      (fun idx p acc -> (idx, Array.init words_per_page (page_get p)) :: acc)
      t.pages []
  in
  let a = Array.of_list items in
  Array.sort (fun (a, _) (b, _) -> compare a b) a;
  a

let restore t (s : snapshot) =
  Hashtbl.reset t.pages;
  Array.fill t.cache_idx 0 cache_slots (-1);
  Array.fill t.cache_page 0 cache_slots zero_page;
  Array.iter
    (fun (idx, words) ->
      let p = fresh_page () in
      Array.iteri (page_set p) words;
      Hashtbl.add t.pages idx p)
    s

let of_snapshot s =
  let t = create () in
  restore t s;
  t

let iter_nonzero f t =
  Hashtbl.iter
    (fun idx p ->
      let base = idx * page_bytes in
      for w = 0 to words_per_page - 1 do
        let v = page_get p w in
        if not (Int64.equal v 0L) then f (base + (8 * w)) v
      done)
    t.pages

let fold_nonzero f acc t =
  let acc = ref acc in
  iter_nonzero (fun addr v -> acc := f !acc addr v) t;
  !acc

let pages t = Hashtbl.length t.pages
let cache_arrays t = (t.cache_idx, t.cache_page)
