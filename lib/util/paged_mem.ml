(* Paged sparse memory: 4 KiB pages (512 x int64 words) in a small table,
   with a one-entry page cache in front. The emulator's access stream is
   strongly page-local (stencils, streams, hash tables), so the common
   load/store touches no hash and allocates nothing; a page is materialised
   on its first store. *)

let page_bytes = 4096
let words_per_page = page_bytes / 8

type t = {
  pages : (int, int64 array) Hashtbl.t;
  mutable last_idx : int;  (* page number of [last]; -1 = no cached page *)
  mutable last : int64 array;
}

let no_page : int64 array = [||]

let create () = { pages = Hashtbl.create 64; last_idx = -1; last = no_page }

let page_of_addr addr = addr lsr 12
let word_of_addr addr = (addr lsr 3) land (words_per_page - 1)

let check_addr addr =
  if addr < 0 then invalid_arg "Paged_mem: negative address";
  if addr land 7 <> 0 then invalid_arg "Paged_mem: unaligned address"

let find t idx =
  if t.last_idx = idx then t.last
  else
    match Hashtbl.find_opt t.pages idx with
    | Some p ->
        t.last_idx <- idx;
        t.last <- p;
        p
    | None -> no_page

let load t addr =
  check_addr addr;
  let p = find t (page_of_addr addr) in
  if p == no_page then 0L else p.(word_of_addr addr)

let store t addr v =
  check_addr addr;
  let idx = page_of_addr addr in
  let p = find t idx in
  let p =
    if p != no_page then p
    else begin
      let fresh = Array.make words_per_page 0L in
      Hashtbl.add t.pages idx fresh;
      t.last_idx <- idx;
      t.last <- fresh;
      fresh
    end
  in
  p.(word_of_addr addr) <- v

let iter_nonzero f t =
  Hashtbl.iter
    (fun idx p ->
      let base = idx * page_bytes in
      Array.iteri
        (fun w v -> if not (Int64.equal v 0L) then f (base + (8 * w)) v)
        p)
    t.pages

let fold_nonzero f acc t =
  let acc = ref acc in
  iter_nonzero (fun addr v -> acc := f !acc addr v) t;
  !acc

let pages t = Hashtbl.length t.pages
