(** Sparse word-addressed memory backed by 4 KiB pages.

    Addresses are non-negative, 8-byte-aligned byte addresses; each holds
    one [int64] word (0 when never written). Pages (512 words) materialise
    on first store and live in a small table behind a one-entry page
    cache, so page-local access streams neither hash nor allocate. *)

type t

val create : unit -> t

val load : t -> int -> int64
(** Word at a byte address; [0L] if never written. Raises
    [Invalid_argument] on negative or unaligned addresses. *)

val store : t -> int -> int64 -> unit
(** Write the word at a byte address, materialising its page. *)

val iter_nonzero : (int -> int64 -> unit) -> t -> unit
(** Apply to every word with a non-zero value, in no particular order. *)

val fold_nonzero : ('a -> int -> int64 -> 'a) -> 'a -> t -> 'a

val pages : t -> int
(** Number of materialised pages. *)
