(** Sparse word-addressed memory backed by 4 KiB pages.

    Addresses are non-negative, 8-byte-aligned byte addresses; each holds
    one [int64] word (0 when never written). Pages (512 words) materialise
    on first store and live in a small table behind a one-entry page
    cache, so page-local access streams neither hash nor allocate. *)

type t

val create : unit -> t

val load : t -> int -> int64
(** Word at a byte address; [0L] if never written. Raises
    [Invalid_argument] on negative or unaligned addresses. *)

val store : t -> int -> int64 -> unit
(** Write the word at a byte address, materialising its page. *)

val load_validated : t -> int -> int64
val store_validated : t -> int -> int64 -> unit
(** [load]/[store] without re-validating the address: for hot paths whose
    caller has already checked it is non-negative and 8-byte aligned (the
    compiled emulator validates once per access and must not pay twice).
    An unchecked misaligned address silently aliases the containing
    word. *)

(** {2 Unboxed page access}

    The compiled emulator's inner loop must read and write memory without
    boxing the [int64]. Pages are int64 bigarrays; [page_get]/[page_set]
    are the bigarray intrinsics (no bounds check — word indices come from
    {!word_index}, which masks into range), and the page handles returned
    by [page_for_load]/[page_for_store] are existing blocks, so a
    load/store compiled against this interface allocates nothing.
    Addresses must already be validated as in {!load_validated}. *)

type page = (int64, Bigarray.int64_elt, Bigarray.c_layout) Bigarray.Array1.t
(** Concrete (not abstract) so the [page_get]/[page_set] primitives can
    see the element kind and compile to unboxed accesses at call sites. *)

external page_get : page -> int -> int64 = "%caml_ba_unsafe_ref_1"
external page_set : page -> int -> int64 -> unit = "%caml_ba_unsafe_set_1"

val page_for_load : t -> int -> page
(** Page holding the given byte address, for reading: a shared all-zero
    page when the address' page was never stored to. Never write through
    it. *)

val page_for_store : t -> int -> page
(** Page holding the given byte address, materialised if absent. *)

val word_index : int -> int
(** Index of a byte address' word within its page. *)

val words_per_page : int
(** Words per page; a power of two, so [word_index addr] is
    [(addr lsr 3) land (words_per_page - 1)]. *)

val cache_slots : int
(** Slots in the direct-mapped page cache; a power of two. A page number
    [idx] maps to slot [idx land (cache_slots - 1)]. *)

val zero_page : page
(** The shared all-zero page standing in for absent pages in the cache and
    on the load path. Never write to it. *)

val cache_arrays : t -> int array * page array
(** The live (page number, page) arrays of the direct-mapped cache, for
    callers that inline the cache-hit test (without cross-module inlining
    a call per memory access costs more than the access). Treat both as
    read-only: slot [s] holds a valid pairing whenever [idx land
    (cache_slots - 1) = s] and the idx entry is non-negative; a cached
    {!zero_page} means the page was absent when probed. On a miss, fall
    back to {!page_for_load}/{!page_for_store}, which refill the cache. *)

type snapshot
(** An immutable deep copy of a memory's materialised pages. *)

val snapshot : t -> snapshot
(** Capture the current contents. Later stores to [t] do not affect the
    snapshot. *)

val restore : t -> snapshot -> unit
(** Replace the contents of [t] with the snapshot's (pages materialised at
    capture time stay materialised, everything else reads 0). Stores after
    a restore do not affect the snapshot. *)

val of_snapshot : snapshot -> t
(** A fresh memory holding the snapshot's contents. *)

val iter_nonzero : (int -> int64 -> unit) -> t -> unit
(** Apply to every word with a non-zero value, in no particular order. *)

val fold_nonzero : ('a -> int -> int64 -> 'a) -> 'a -> t -> 'a

val pages : t -> int
(** Number of materialised pages. *)
