type 'a t = {
  buf : 'a array;
  dummy : 'a;  (* fills vacated slots so no stale value is retained *)
  mutable head : int;
  mutable len : int;
}

let create ~dummy ~capacity =
  if capacity <= 0 then invalid_arg "Ring.create: capacity must be positive";
  { buf = Array.make capacity dummy; dummy; head = 0; len = 0 }

let capacity t = Array.length t.buf
let length t = t.len
let is_empty t = t.len = 0
let is_full t = t.len = Array.length t.buf

(* [head < capacity] and [i <= capacity], so one conditional subtract
   replaces the division a [mod] would cost on every access *)
let slot t i =
  let s = t.head + i in
  if s >= Array.length t.buf then s - Array.length t.buf else s

let push t x =
  if is_full t then failwith "Ring.push: full";
  t.buf.(slot t t.len) <- x;
  t.len <- t.len + 1

let pop t =
  if is_empty t then failwith "Ring.pop: empty";
  let x = t.buf.(t.head) in
  t.buf.(t.head) <- t.dummy;
  let h = t.head + 1 in
  t.head <- (if h >= Array.length t.buf then 0 else h);
  t.len <- t.len - 1;
  x

let peek t =
  if is_empty t then failwith "Ring.peek: empty";
  t.buf.(t.head)

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Ring.get: index out of range";
  t.buf.(slot t i)

let remove_at t i =
  if i < 0 || i >= t.len then invalid_arg "Ring.remove_at: index out of range";
  let x = t.buf.(slot t i) in
  for j = i to t.len - 2 do
    t.buf.(slot t j) <- t.buf.(slot t (j + 1))
  done;
  t.buf.(slot t (t.len - 1)) <- t.dummy;
  t.len <- t.len - 1;
  x

let iter f t =
  for i = 0 to t.len - 1 do
    f t.buf.(slot t i)
  done

let iteri f t =
  for i = 0 to t.len - 1 do
    f i t.buf.(slot t i)
  done

let fold f acc t =
  let acc = ref acc in
  iter (fun x -> acc := f !acc x) t;
  !acc

let exists p t =
  let rec go i = i < t.len && (p t.buf.(slot t i) || go (i + 1)) in
  go 0

let to_list t = List.rev (fold (fun acc x -> x :: acc) [] t)

let clear t =
  Array.fill t.buf 0 (Array.length t.buf) t.dummy;
  t.head <- 0;
  t.len <- 0
