(** Bounded FIFO queue over a circular buffer.

    Used throughout the microarchitecture for instruction queues: BEU FIFOs,
    fetch buffers, and the load-store queue all need O(1) push/pop with a
    hard capacity and indexed access from the head (for scheduling
    windows). *)

type 'a t

val create : dummy:'a -> capacity:int -> 'a t
(** [create ~dummy ~capacity] makes an empty ring holding at most
    [capacity] elements. [capacity] must be positive. [dummy] fills
    unused slots (the buffer is unboxed — no per-element [option]
    wrapper — so vacated slots need a placeholder value; it is never
    returned by any accessor). *)

val capacity : 'a t -> int
val length : 'a t -> int
val is_empty : 'a t -> bool
val is_full : 'a t -> bool

val push : 'a t -> 'a -> unit
(** Appends at the tail. Raises [Failure] when full. *)

val pop : 'a t -> 'a
(** Removes and returns the head. Raises [Failure] when empty. *)

val peek : 'a t -> 'a
(** Returns the head without removing it. Raises [Failure] when empty. *)

val get : 'a t -> int -> 'a
(** [get t i] is the element [i] positions from the head ([get t 0 = peek
    t]). Raises [Invalid_argument] when out of range. *)

val remove_at : 'a t -> int -> 'a
(** [remove_at t i] removes and returns the element [i] positions from the
    head, shifting later elements forward. O(n); only used with tiny
    scheduling windows. *)

val iter : ('a -> unit) -> 'a t -> unit
(** Head-to-tail iteration. *)

val iteri : (int -> 'a -> unit) -> 'a t -> unit
val fold : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
val exists : ('a -> bool) -> 'a t -> bool
val to_list : 'a t -> 'a list
val clear : 'a t -> unit
