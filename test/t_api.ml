(* The braidsim-api/1 surface: request/response JSON round-trips, schema
   and framing rejection, bounded round-robin admission, and an end-to-end
   daemon over a Unix socket — concurrent clients, CLI-vs-served document
   byte-identity, warm sweeps answered with zero simulations, and graceful
   shutdown. *)

module U = Braid_uarch
module Api = Braid_api
module Req = Braid_api.Request
module Resp = Braid_api.Response

(* --- request JSON round-trip --- *)

let sample_requests =
  [
    Req.Run
      {
        r_bench = "gzip";
        r_seed = 7;
        r_scale = 1000;
        r_core = U.Config.Braid_exec;
        r_width = 8;
        r_sample = None;
      };
    Req.Run
      {
        r_bench = "mcf";
        r_seed = 1;
        r_scale = 100_000;
        r_core = U.Config.Ooo;
        r_width = 8;
        r_sample =
          Some
            {
              sm_interval = 2000;
              sm_max_k = 16;
              sm_warmup = 2000;
              sm_seed = 1;
              sm_verify = true;
            };
      };
    Req.Experiment
      {
        e_ids = [ "table2"; "fig5" ];
        e_scale = 2000;
        e_jobs = 4;
        e_counters = true;
        e_sample = None;
      };
    Req.Experiment
      {
        e_ids = [];
        e_scale = 12_000;
        e_jobs = 1;
        e_counters = false;
        e_sample =
          Some
            {
              sm_interval = 1000;
              sm_max_k = 8;
              sm_warmup = 0;
              sm_seed = 7;
              sm_verify = false;
            };
      };
    Req.Sweep
      {
        s_preset = U.Config.Ooo;
        s_axes = [ "ext_regs=8,16"; "sched_window=1,2" ];
        s_mode = Braid_dse.Grid.One_at_a_time;
        s_benches = [ "gzip"; "crafty" ];
        s_seed = 3;
        s_scale = 2000;
        s_jobs = 2;
        s_cache_dir = Some "/tmp/cache";
        s_sample =
          Some
            {
              sm_interval = 2000;
              sm_max_k = 8;
              sm_warmup = 2000;
              sm_seed = 1;
              sm_verify = false;
            };
      };
    Req.Sweep
      {
        s_preset = U.Config.Braid_exec;
        s_axes = [];
        s_mode = Braid_dse.Grid.Cartesian;
        s_benches = [];
        s_seed = 1;
        s_scale = 500;
        s_jobs = 1;
        s_cache_dir = None;
        s_sample = None;
      };
    Req.Trace
      {
        t_bench = "mcf";
        t_seed = 2;
        t_scale = 1500;
        t_core = U.Config.In_order;
        t_width = 4;
        t_from = 10;
        t_cycles = 64;
        t_buffer = 4096;
        t_chrome = true;
        t_counters = true;
      };
    Req.Fuzz
      {
        f_count = 50;
        f_seed = 9;
        f_index = 3;
        f_cores = [ U.Config.Ooo; U.Config.Dep_steer ];
        f_invariants = true;
        f_shrink = false;
      };
    Req.Rv
      {
        v_hex = "braid-rv/1 fib\n@base 0x0\n@entry 0x0\n00000073\n";
        v_cores = [ U.Config.In_order; U.Config.Braid_exec ];
        v_oracle = true;
      };
    Req.Rv { v_hex = "braid-rv/1 x\n00000073\n"; v_cores = []; v_oracle = false };
    Req.Cmp
      {
        c_benches = [ "gzip"; "crafty" ];
        c_cores = 2;
        c_seed = 1;
        c_scale = 600;
        c_core = U.Config.Braid_exec;
        c_width = 8;
        c_l2 =
          Some
            {
              U.Config.size_bytes = 524288;
              ways = 8;
              line_bytes = 64;
              latency = 12;
            };
        c_counters = true;
      };
    Req.Cmp
      {
        c_benches = [ "mcf" ];
        c_cores = 4;
        c_seed = 0;
        c_scale = 1200;
        c_core = U.Config.Ooo;
        c_width = 8;
        c_l2 = None;
        c_counters = false;
      };
    Req.Status;
    Req.Cancel { request_id = 42 };
    Req.Shutdown;
  ]

let test_request_roundtrip () =
  List.iter
    (fun req ->
      match Req.of_json (Req.to_json req) with
      | Ok req' ->
          Alcotest.(check bool)
            ("round-trip " ^ Req.op_name req)
            true (req = req')
      | Error m -> Alcotest.fail (Req.op_name req ^ ": " ^ m))
    sample_requests

(* --- response JSON round-trip --- *)

let sample_responses =
  [
    Resp.Done
      {
        id = 1;
        payload = Resp.Run_done { text = "gzip on braid\n"; sampled = None };
      };
    Resp.Done
      {
        id = 12;
        payload =
          Resp.Run_done
            {
              text = "mcf on ooo (sampled)\n";
              sampled =
                Some
                  {
                    Resp.sp_reps = 8;
                    sp_intervals = 50;
                    sp_ipc = 1.875;
                    sp_error = Some 0.0042;
                  };
            };
      };
    Resp.Done
      {
        id = 13;
        payload =
          Resp.Run_done
            {
              text = "mcf on ooo (sampled)\n";
              sampled =
                Some
                  {
                    Resp.sp_reps = 5;
                    sp_intervals = 6;
                    sp_ipc = 0.5;
                    sp_error = None;
                  };
            };
      };
    Resp.Done
      {
        id = 2;
        payload =
          Resp.Experiment_done { text = "table\n"; doc = "{\"schema\":\"x\"}" };
      };
    Resp.Done
      {
        id = 3;
        payload =
          Resp.Sweep_done
            { text = "frontier\n"; doc = "{}"; simulated = 8; cache_hits = 0 };
      };
    Resp.Done
      {
        id = 4;
        payload =
          Resp.Trace_done
            {
              text = "timeline\n";
              counters_text = Some "\nfetch.cycles 12\n";
              chrome = Some { Resp.c_doc = "[]"; c_events = 9; c_tracks = 2 };
            };
      };
    Resp.Done
      {
        id = 5;
        payload =
          Resp.Trace_done { text = "t\n"; counters_text = None; chrome = None };
      };
    Resp.Done
      { id = 6; payload = Resp.Fuzz_done { text = "ok\n"; tested = 50; failures = 0 } };
    Resp.Done
      {
        id = 7;
        payload =
          Resp.Status_report
            {
              Resp.pool_jobs = 4;
              max_queue = 64;
              queue_depth = 2;
              active = Some (9, "sweep");
              served = 11;
              failed = 1;
              cancelled = 3;
              counters = [ ("dse.simulations", 8); ("dse.cache_hits", 8) ];
            };
      };
    Resp.Done
      {
        id = 12;
        payload =
          Resp.Rv_done
            {
              text = "fib: ok\n";
              output = "hello";
              exit_code = Some 6765;
              rv_dynamic = 182;
              ir_dynamic = 811;
              oracle_ok = Some true;
            };
      };
    Resp.Done
      {
        id = 13;
        payload =
          Resp.Rv_done
            {
              text = "x\n";
              output = "";
              exit_code = None;
              rv_dynamic = 1;
              ir_dynamic = 3;
              oracle_ok = None;
            };
      };
    Resp.Done
      {
        id = 14;
        payload =
          Resp.Cmp_done
            {
              text = "cmp: 2 cores\n";
              aggregate_ipc = 2.5;
              weighted_speedup = 0.9375;
              cycles = 2818;
              invalidations = 50;
              downgrades = 50;
              writebacks = 55;
              remote_hits = 72;
              counters_text = Some "\ncore0.commit.instrs 3122\n";
            };
      };
    Resp.Done
      {
        id = 15;
        payload =
          Resp.Cmp_done
            {
              text = "cmp: 1 core\n";
              aggregate_ipc = 1.25;
              weighted_speedup = 1.0;
              cycles = 2402;
              invalidations = 0;
              downgrades = 0;
              writebacks = 0;
              remote_hits = 0;
              counters_text = None;
            };
      };
    Resp.Done { id = 8; payload = Resp.Cancelled { cancelled_id = 5 } };
    Resp.Done { id = 9; payload = Resp.Shutdown_ack };
    Resp.Progress { id = 10; completed = 3; total = 8; label = "table2/gcc" };
    Resp.Failed { id = 11; message = "unknown benchmark \"gzp\"" };
  ]

let test_response_roundtrip () =
  List.iter
    (fun resp ->
      match Resp.of_json (Resp.to_json resp) with
      | Ok resp' -> Alcotest.(check bool) "round-trip" true (resp = resp')
      | Error m -> Alcotest.fail m)
    sample_responses

(* --- schema and frame rejection --- *)

let test_schema_rejection () =
  let expect_err label json fragment =
    match Req.of_json json with
    | Ok _ -> Alcotest.fail (label ^ ": accepted")
    | Error m ->
        Alcotest.(check bool)
          (label ^ " names the offender: " ^ m)
          true
          (Astring_contains.contains m fragment)
  in
  expect_err "foreign version"
    "{\"schema\":\"braidsim-api/2\",\"op\":\"status\"}" "schema";
  expect_err "missing schema" "{\"op\":\"status\"}" "schema";
  expect_err "unknown op"
    "{\"schema\":\"braidsim-api/1\",\"op\":\"reboot\"}" "op";
  expect_err "missing field"
    "{\"schema\":\"braidsim-api/1\",\"op\":\"run\",\"bench\":\"gzip\"}" "seed";
  expect_err "not json" "}{" "";
  (* responses enforce the same version gate *)
  (match Resp.of_json "{\"schema\":\"braidsim-api/9\",\"type\":\"done\"}" with
  | Ok _ -> Alcotest.fail "foreign response version accepted"
  | Error _ -> ())

let test_wire_framing () =
  let module W = Braid_api.Wire in
  (* encode/decode round-trip, including the consumed-byte count *)
  let frame = W.encode "hello" ^ "trailing" in
  (match W.decode frame with
  | Ok (payload, consumed) ->
      Alcotest.(check string) "payload" "hello" payload;
      Alcotest.(check int) "consumed" 9 consumed
  | Error e -> Alcotest.fail (W.error_to_string e));
  (* empty buffer is a clean close, not truncation *)
  (match W.decode "" with
  | Error W.Closed -> ()
  | _ -> Alcotest.fail "empty buffer should be Closed");
  (* a frame cut mid-header and mid-payload is truncated *)
  (match W.decode (String.sub (W.encode "hello") 0 2) with
  | Error (W.Truncated _) -> ()
  | _ -> Alcotest.fail "short header should be Truncated");
  (match W.decode (String.sub (W.encode "hello") 0 6) with
  | Error (W.Truncated _) -> ()
  | _ -> Alcotest.fail "short payload should be Truncated");
  (* a header naming more than max_frame is rejected without allocating *)
  let oversized = Bytes.create 4 in
  Bytes.set_uint8 oversized 0 0x7f;
  Bytes.set_uint8 oversized 1 0xff;
  Bytes.set_uint8 oversized 2 0xff;
  Bytes.set_uint8 oversized 3 0xff;
  (match W.decode (Bytes.to_string oversized) with
  | Error (W.Oversized _) -> ()
  | _ -> Alcotest.fail "oversized header should be rejected")

(* --- admission fairness --- *)

let test_admission_fairness () =
  let q = Api.Admission.create ~max:16 in
  List.iter
    (fun (client, x) ->
      Alcotest.(check bool) "admitted" true (Api.Admission.push q ~client x))
    [ (1, "a1"); (1, "a2"); (1, "a3"); (2, "b1"); (2, "b2"); (3, "c1") ];
  let order = List.init 6 (fun _ -> Option.get (Api.Admission.pop q)) in
  (* round-robin across clients, FIFO within a client: the flooding
     client 1 cannot starve clients 2 and 3 *)
  Alcotest.(check (list string))
    "service order" [ "a1"; "b1"; "c1"; "a2"; "b2"; "a3" ] order;
  Alcotest.(check bool) "drained" true (Api.Admission.pop q = None)

let test_admission_bound_and_cancel () =
  let q = Api.Admission.create ~max:2 in
  Alcotest.(check bool) "first" true (Api.Admission.push q ~client:1 10);
  Alcotest.(check bool) "second" true (Api.Admission.push q ~client:2 20);
  Alcotest.(check bool) "refused at capacity" false
    (Api.Admission.push q ~client:3 30);
  Alcotest.(check int) "depth" 2 (Api.Admission.depth q);
  (* cancelling frees a slot and keeps service order for the rest *)
  Alcotest.(check (option int)) "cancelled" (Some 10)
    (Api.Admission.cancel q (fun x -> x = 10));
  Alcotest.(check (option int)) "missing" None
    (Api.Admission.cancel q (fun x -> x = 99));
  Alcotest.(check bool) "slot freed" true (Api.Admission.push q ~client:1 11);
  Alcotest.(check (option int)) "next" (Some 20) (Api.Admission.pop q);
  Alcotest.(check (option int)) "last" (Some 11) (Api.Admission.pop q);
  Alcotest.(check (option int)) "empty" None (Api.Admission.pop q)

(* --- end-to-end daemon --- *)

let fresh_path suffix =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "braidsim-test-%d-%s" (Unix.getpid ()) suffix)

let rec rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter
      (fun f ->
        let path = Filename.concat dir f in
        if Sys.is_directory path then rm_rf path else Sys.remove path)
      (Sys.readdir dir);
    Unix.rmdir dir
  end

let with_server ~jobs f =
  let sock = fresh_path "api.sock" in
  (try Unix.unlink sock with Unix.Unix_error _ -> ());
  let addr = Api.Addr.Unix_sock sock in
  match Api.Server.create { Api.Server.addr; jobs; max_queue = 16 } with
  | Error m -> Alcotest.fail m
  | Ok server ->
      let th = Thread.create Api.Server.run server in
      Fun.protect
        ~finally:(fun () ->
          Api.Server.stop server;
          Thread.join th;
          try Unix.unlink sock with Unix.Unix_error _ -> ())
        (fun () -> f addr)

let rpc ?on_progress addr req =
  match Api.Client.connect addr with
  | Error m -> Alcotest.fail m
  | Ok c ->
      let r = Api.Client.request ?on_progress c req in
      Api.Client.close c;
      r

let experiment_req =
  Req.Experiment
    {
      e_ids = [ "table2" ];
      e_scale = 1200;
      e_jobs = 2;
      e_counters = false;
      e_sample = None;
    }

(* The tentpole acceptance criterion: the served document is byte-for-byte
   the one-shot CLI's document, because both are the same Exec payload. *)
let test_served_byte_identity () =
  let one_shot =
    match Api.Exec.exec (Api.Exec.one_shot_env ()) experiment_req with
    | Ok (Resp.Experiment_done { text; doc }) -> (text, doc)
    | Ok _ -> Alcotest.fail "one-shot: unexpected payload"
    | Error m -> Alcotest.fail m
  in
  with_server ~jobs:2 (fun addr ->
      match rpc addr experiment_req with
      | Ok (Resp.Experiment_done { text; doc }) ->
          Alcotest.(check string) "rendered text identical" (fst one_shot) text;
          Alcotest.(check string) "json document identical" (snd one_shot) doc
      | Ok _ -> Alcotest.fail "served: unexpected payload"
      | Error m -> Alcotest.fail m)

(* Progress frames stream while the job runs: monotonically increasing
   completions up to the advertised total. *)
let test_progress_stream () =
  with_server ~jobs:2 (fun addr ->
      let seen = ref [] in
      let on_progress ~completed ~total ~label:_ =
        seen := (completed, total) :: !seen
      in
      match rpc ~on_progress addr experiment_req with
      | Ok (Resp.Experiment_done _) ->
          let seen = List.rev !seen in
          Alcotest.(check bool) "some progress arrived" true (seen <> []);
          List.iter
            (fun (c, t) ->
              Alcotest.(check bool) "within total" true (c >= 1 && c <= t))
            seen;
          Alcotest.(check bool) "monotonic" true
            (let rec mono = function
               | (a, _) :: ((b, _) :: _ as rest) -> a < b && mono rest
               | _ -> true
             in
             mono seen)
      | Ok _ -> Alcotest.fail "unexpected payload"
      | Error m -> Alcotest.fail m)

(* Several clients at once: every request gets its own correct terminal
   frame even though one executor serializes the simulations. *)
let test_concurrent_clients () =
  with_server ~jobs:2 (fun addr ->
      let results = Array.make 3 (Error "unset") in
      let threads =
        Array.init 3 (fun i ->
            Thread.create
              (fun () ->
                let req =
                  Req.Run
                    {
                      r_bench = "gzip";
                      r_seed = 1 + i;
                      r_scale = 800;
                      r_core = U.Config.Braid_exec;
                      r_width = 8;
                      r_sample = None;
                    }
                in
                results.(i) <- rpc addr req)
              ())
      in
      Array.iter Thread.join threads;
      Array.iteri
        (fun i r ->
          match r with
          | Ok (Resp.Run_done { text; _ }) ->
              Alcotest.(check bool)
                (Printf.sprintf "client %d got a run report" i)
                true
                (Astring_contains.contains text "gzip on braid")
          | Ok _ -> Alcotest.fail "unexpected payload"
          | Error m -> Alcotest.fail m)
        results)

(* The warm-request acceptance criterion: a repeated sweep over the same
   cache directory performs zero simulations, and the daemon's counter
   registry proves it. *)
let test_warm_sweep_zero_simulation () =
  let cache_dir = fresh_path "warm-cache" in
  rm_rf cache_dir;
  let sweep =
    Req.Sweep
      {
        s_preset = U.Config.Braid_exec;
        s_axes = [ "ext_regs=8,16" ];
        s_mode = Braid_dse.Grid.Cartesian;
        s_benches = [ "gzip" ];
        s_seed = 1;
        s_scale = 1000;
        s_jobs = 2;
        s_cache_dir = Some cache_dir;
        s_sample = None;
      }
  in
  Fun.protect
    ~finally:(fun () -> rm_rf cache_dir)
    (fun () ->
      with_server ~jobs:2 (fun addr ->
          let sweep_stats label =
            match rpc addr sweep with
            | Ok (Resp.Sweep_done { simulated; cache_hits; doc; _ }) ->
                Alcotest.(check bool) (label ^ " carries a document") true
                  (String.length doc > 0);
                (simulated, cache_hits)
            | Ok _ -> Alcotest.fail (label ^ ": unexpected payload")
            | Error m -> Alcotest.fail m
          in
          let cold_simulated, cold_hits = sweep_stats "cold" in
          Alcotest.(check int) "cold simulated both points" 2 cold_simulated;
          Alcotest.(check int) "cold hit nothing" 0 cold_hits;
          let warm_simulated, warm_hits = sweep_stats "warm" in
          Alcotest.(check int) "warm simulated nothing" 0 warm_simulated;
          Alcotest.(check int) "warm hit every point" 2 warm_hits;
          (* the daemon's own registry shows the same evidence *)
          match rpc addr Req.Status with
          | Ok (Resp.Status_report st) ->
              let count name =
                try List.assoc name st.Resp.counters
                with Not_found -> Alcotest.fail ("no counter " ^ name)
              in
              Alcotest.(check int) "dse.simulations" 2 (count "dse.simulations");
              Alcotest.(check int) "dse.cache_hits" 2 (count "dse.cache_hits");
              Alcotest.(check int) "served" 2 st.Resp.served;
              Alcotest.(check int) "nothing failed" 0 st.Resp.failed
          | Ok _ -> Alcotest.fail "unexpected payload"
          | Error m -> Alcotest.fail m))

(* A bad request is refused with a message; the daemon and the connection
   both survive to serve the next one. *)
let test_bad_request_isolated () =
  with_server ~jobs:1 (fun addr ->
      match Api.Client.connect addr with
      | Error m -> Alcotest.fail m
      | Ok c ->
          Fun.protect
            ~finally:(fun () -> Api.Client.close c)
            (fun () ->
              (match
                 Api.Client.request c
                   (Req.Run
                      {
                        r_bench = "no-such-bench";
                        r_seed = 1;
                        r_scale = 100;
                        r_core = U.Config.Braid_exec;
                        r_width = 8;
                        r_sample = None;
                      })
               with
              | Error m ->
                  Alcotest.(check bool) "names the benchmark" true
                    (Astring_contains.contains m "no-such-bench")
              | Ok _ -> Alcotest.fail "bad request accepted");
              match Api.Client.request c Req.Status with
              | Ok (Resp.Status_report st) ->
                  Alcotest.(check int) "failure was counted" 1 st.Resp.failed
              | Ok _ -> Alcotest.fail "unexpected payload"
              | Error m -> Alcotest.fail m))

(* Graceful shutdown: the Shutdown request acks, run returns, and the
   socket file is gone. *)
let test_graceful_shutdown () =
  let sock = fresh_path "shutdown.sock" in
  (try Unix.unlink sock with Unix.Unix_error _ -> ());
  let addr = Api.Addr.Unix_sock sock in
  match Api.Server.create { Api.Server.addr; jobs = 1; max_queue = 4 } with
  | Error m -> Alcotest.fail m
  | Ok server ->
      let th = Thread.create Api.Server.run server in
      (match rpc addr Req.Shutdown with
      | Ok Resp.Shutdown_ack -> ()
      | Ok _ -> Alcotest.fail "unexpected payload"
      | Error m -> Alcotest.fail m);
      Thread.join th;
      Alcotest.(check bool) "socket removed" false (Sys.file_exists sock)

let suite =
  ( "api",
    [
      Alcotest.test_case "request json round-trip" `Quick test_request_roundtrip;
      Alcotest.test_case "response json round-trip" `Quick
        test_response_roundtrip;
      Alcotest.test_case "schema rejection" `Quick test_schema_rejection;
      Alcotest.test_case "wire framing" `Quick test_wire_framing;
      Alcotest.test_case "admission fairness" `Quick test_admission_fairness;
      Alcotest.test_case "admission bound and cancel" `Quick
        test_admission_bound_and_cancel;
      Alcotest.test_case "served output byte-identical" `Slow
        test_served_byte_identity;
      Alcotest.test_case "progress stream" `Slow test_progress_stream;
      Alcotest.test_case "concurrent clients" `Slow test_concurrent_clients;
      Alcotest.test_case "warm sweep zero simulations" `Slow
        test_warm_sweep_zero_simulation;
      Alcotest.test_case "bad request isolated" `Quick test_bad_request_isolated;
      Alcotest.test_case "graceful shutdown" `Quick test_graceful_shutdown;
    ] )
