(* Tests for the timing model's hot-path data structures: the calendar
   queue (Braid_util.Calq), the paged sparse memory (Braid_util.Paged_mem)
   and the per-cycle resource counters (Braid_uarch.Machine.Rc). *)

module Calq = Braid_util.Calq
module Paged_mem = Braid_util.Paged_mem
module Rc = Braid_uarch.Machine.Rc

(* --- Calq --------------------------------------------------------------- *)

let drain_list q cycle =
  let acc = ref [] in
  Calq.drain q cycle (fun v -> acc := v :: !acc);
  List.rev !acc

let test_calq_insertion_order () =
  let q = Calq.create ~horizon:16 in
  Calq.add q 3 10;
  Calq.add q 3 11;
  Calq.add q 3 12;
  Calq.add q 5 99;
  Alcotest.(check int) "length" 4 (Calq.length q);
  Alcotest.(check (list int)) "cycle 3 in order" [ 10; 11; 12 ] (drain_list q 3);
  Alcotest.(check (list int)) "cycle 4 empty" [] (drain_list q 4);
  Alcotest.(check (list int)) "cycle 5" [ 99 ] (drain_list q 5);
  Alcotest.(check bool) "empty" true (Calq.is_empty q)

let test_calq_horizon_wrap_grows () =
  (* wheel of 4 slots: cycles 1 and 5 collide (5 mod 4 = 1); with both
     live the wheel must double rather than merge or drop either *)
  let q = Calq.create ~horizon:4 in
  Alcotest.(check int) "initial wheel" 4 (Calq.horizon q);
  Calq.add q 1 100;
  Calq.add q 5 500;
  Alcotest.(check bool) "wheel grew" true (Calq.horizon q >= 8);
  Alcotest.(check (list int)) "cycle 1 intact" [ 100 ] (drain_list q 1);
  Alcotest.(check (list int)) "cycle 5 intact" [ 500 ] (drain_list q 5)

let test_calq_drain_exact_cycle_only () =
  (* events do not leak across a wrap: 2 and 2 + wheel size share a slot
     once drained buckets are reused, but a drain at the wrong cycle must
     see nothing *)
  let q = Calq.create ~horizon:4 in
  Calq.add q 2 7;
  Alcotest.(check (list int)) "cycle 2" [ 7 ] (drain_list q 2);
  Calq.add q 6 8;
  Alcotest.(check (list int)) "cycle 2 again: nothing" [] (drain_list q 2);
  Alcotest.(check (list int)) "cycle 6" [ 8 ] (drain_list q 6)

let test_calq_clear () =
  let q = Calq.create ~horizon:8 in
  Calq.add q 1 1;
  Calq.add q 2 2;
  Calq.clear q;
  Alcotest.(check bool) "cleared" true (Calq.is_empty q);
  Alcotest.(check (list int)) "nothing at 1" [] (drain_list q 1);
  Alcotest.(check (list int)) "nothing at 2" [] (drain_list q 2)

let test_calq_invalid () =
  Alcotest.check_raises "zero horizon"
    (Invalid_argument "Calq.create: horizon must be positive") (fun () ->
      ignore (Calq.create ~horizon:0));
  let q = Calq.create ~horizon:4 in
  Alcotest.check_raises "negative cycle"
    (Invalid_argument "Calq.add: negative cycle") (fun () -> Calq.add q (-1) 0)

(* --- Paged_mem ---------------------------------------------------------- *)

let test_paged_default_zero () =
  let m = Paged_mem.create () in
  Alcotest.(check int64) "unwritten" 0L (Paged_mem.load m 4096);
  Alcotest.(check int) "loads do not materialise" 0 (Paged_mem.pages m)

let test_paged_page_boundary () =
  (* 4088 and 4096 are adjacent words in different 4 KiB pages *)
  let m = Paged_mem.create () in
  Paged_mem.store m 4088 1L;
  Paged_mem.store m 4096 2L;
  Alcotest.(check int) "two pages" 2 (Paged_mem.pages m);
  Alcotest.(check int64) "last word of page 0" 1L (Paged_mem.load m 4088);
  Alcotest.(check int64) "first word of page 1" 2L (Paged_mem.load m 4096)

let test_paged_sparse () =
  let m = Paged_mem.create () in
  let far = 1 lsl 40 in
  Paged_mem.store m 0 10L;
  Paged_mem.store m far 20L;
  Alcotest.(check int64) "near" 10L (Paged_mem.load m 0);
  Alcotest.(check int64) "far" 20L (Paged_mem.load m far);
  Alcotest.(check int) "only touched pages exist" 2 (Paged_mem.pages m);
  let sum =
    Paged_mem.fold_nonzero (fun acc _ v -> Int64.add acc v) 0L m
  in
  Alcotest.(check int64) "fold_nonzero sees both" 30L sum

let test_paged_overwrite_and_zero () =
  let m = Paged_mem.create () in
  Paged_mem.store m 64 5L;
  Paged_mem.store m 64 0L;
  let count = Paged_mem.fold_nonzero (fun acc _ _ -> acc + 1) 0 m in
  Alcotest.(check int) "zeroed word not iterated" 0 count;
  Alcotest.(check int64) "reads back zero" 0L (Paged_mem.load m 64)

(* Snapshot/restore is what lets the sampled driver rewind the compiled
   emulator to an earlier window without replaying from the start. *)
let test_paged_snapshot_restore () =
  let m = Paged_mem.create () in
  Paged_mem.store m 0 1L;
  Paged_mem.store m 4096 2L;
  Paged_mem.store m (1 lsl 30) 3L;
  let snap = Paged_mem.snapshot m in
  (* mutate every captured page, zero one word, and touch a new page *)
  Paged_mem.store m 0 99L;
  Paged_mem.store m 4096 0L;
  Paged_mem.store m 8192 4L;
  Paged_mem.restore m snap;
  Alcotest.(check int64) "first page restored" 1L (Paged_mem.load m 0);
  Alcotest.(check int64) "second page restored" 2L (Paged_mem.load m 4096);
  Alcotest.(check int64) "sparse page restored" 3L (Paged_mem.load m (1 lsl 30));
  Alcotest.(check int64) "page created after capture reads zero" 0L
    (Paged_mem.load m 8192)

let test_paged_snapshot_isolated () =
  let m = Paged_mem.create () in
  Paged_mem.store m 64 5L;
  let snap = Paged_mem.snapshot m in
  (* stores to the source after capture must not leak into the snapshot *)
  Paged_mem.store m 64 6L;
  let fresh = Paged_mem.of_snapshot snap in
  Alcotest.(check int64) "snapshot kept the captured value" 5L
    (Paged_mem.load fresh 64);
  (* ... nor stores after a restore *)
  Paged_mem.restore m snap;
  Paged_mem.store m 64 7L;
  let again = Paged_mem.of_snapshot snap in
  Alcotest.(check int64) "snapshot unaffected by post-restore stores" 5L
    (Paged_mem.load again 64);
  (* and two memories restored from one snapshot do not alias *)
  Paged_mem.store fresh 64 8L;
  Alcotest.(check int64) "of_snapshot copies are independent" 7L
    (Paged_mem.load m 64)

let test_paged_invalid_addr () =
  let m = Paged_mem.create () in
  Alcotest.check_raises "unaligned"
    (Invalid_argument "Paged_mem: unaligned address") (fun () ->
      ignore (Paged_mem.load m 13));
  Alcotest.check_raises "negative"
    (Invalid_argument "Paged_mem: negative address") (fun () ->
      Paged_mem.store m (-8) 1L)

(* --- Machine.Rc --------------------------------------------------------- *)

let test_rc_take_first_free () =
  let rc = Rc.create 2 in
  Alcotest.(check int) "lands on requested cycle" 5 (Rc.take_first_free rc 5 2);
  Alcotest.(check int) "cycle 5 now full, slides to 6" 6
    (Rc.take_first_free rc 5 1);
  Alcotest.(check int) "shares cycle 6" 6 (Rc.take_first_free rc 6 1);
  Alcotest.(check int) "cycle 6 full too" 7 (Rc.take_first_free rc 6 1)

let test_rc_take_first_free_impossible () =
  let rc = Rc.create 2 in
  Alcotest.check_raises "request exceeds limit"
    (Invalid_argument "Rc.take_first_free: request 3 exceeds limit 2")
    (fun () -> ignore (Rc.take_first_free rc 0 3))

let test_rc_reclaims_past_cycles () =
  let rc = Rc.create 1 in
  Rc.take rc 0 1;
  Alcotest.(check bool) "cycle 0 full" false (Rc.available rc 0 1);
  Rc.set_now rc 1;
  (* a full window of fresh reservations forces reuse of slot 0's line *)
  Alcotest.(check bool) "future cycle free" true (Rc.available rc 1024 1);
  Rc.take rc 1024 1;
  Alcotest.(check int) "stale slot reclaimed for new cycle" 1
    (Rc.used rc 1024)

let suite =
  ( "perf-structs",
    [
      Alcotest.test_case "calq insertion order" `Quick test_calq_insertion_order;
      Alcotest.test_case "calq horizon wrap grows" `Quick
        test_calq_horizon_wrap_grows;
      Alcotest.test_case "calq drains exact cycle only" `Quick
        test_calq_drain_exact_cycle_only;
      Alcotest.test_case "calq clear" `Quick test_calq_clear;
      Alcotest.test_case "calq invalid args" `Quick test_calq_invalid;
      Alcotest.test_case "paged default zero" `Quick test_paged_default_zero;
      Alcotest.test_case "paged page boundary" `Quick test_paged_page_boundary;
      Alcotest.test_case "paged sparse addresses" `Quick test_paged_sparse;
      Alcotest.test_case "paged overwrite to zero" `Quick
        test_paged_overwrite_and_zero;
      Alcotest.test_case "paged snapshot restore" `Quick
        test_paged_snapshot_restore;
      Alcotest.test_case "paged snapshot isolation" `Quick
        test_paged_snapshot_isolated;
      Alcotest.test_case "paged invalid addresses" `Quick
        test_paged_invalid_addr;
      Alcotest.test_case "rc take_first_free" `Quick test_rc_take_first_free;
      Alcotest.test_case "rc take_first_free impossible" `Quick
        test_rc_take_first_free_impossible;
      Alcotest.test_case "rc reclaims past cycles" `Quick
        test_rc_reclaims_past_cycles;
    ] )
