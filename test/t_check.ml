(* Tests for the differential fuzzer: generator determinism, the oracle's
   clean path, fault injection (the oracle must catch a deliberately
   corrupted commit order and the shrinker must minimise the reproducer),
   and the zero-cost property of the invariant monitor. *)

module U = Braid_uarch
module C = Braid_core
module Ck = Braid_check

(* --- generator --- *)

let test_generate_deterministic () =
  let a = Ck.Gen.generate ~seed:42 ~index:3 in
  let b = Ck.Gen.generate ~seed:42 ~index:3 in
  Alcotest.(check bool) "same case" true (a = b);
  let pa, ma = Ck.Gen.build a and pb, mb = Ck.Gen.build b in
  Alcotest.(check bool) "same program" true (pa = pb && ma = mb);
  let c = Ck.Gen.generate ~seed:42 ~index:4 in
  Alcotest.(check bool) "different index differs" true (a <> c)

let test_subset_rebuild_stable () =
  (* dropping a fragment must not change what the survivors generate:
     the disassembly of a sub-case's program is a subsequence-respecting
     rebuild, not a reroll (per-fragment seeds) *)
  let case = Ck.Gen.generate ~seed:9 ~index:1 in
  match case.Ck.Gen.fragments with
  | first :: _ :: _ ->
      let solo = Ck.Gen.with_fragments case [ first ] in
      let solo2 = Ck.Gen.with_fragments case [ first ] in
      Alcotest.(check bool) "stable" true (Ck.Gen.build solo = Ck.Gen.build solo2)
  | _ -> ()

(* --- oracle clean path --- *)

let test_fuzz_clean () =
  let outcome = Ck.Fuzz.run ~invariants:true ~count:40 ~seed:7 () in
  Alcotest.(check int) "tested" 40 outcome.Ck.Fuzz.tested;
  Alcotest.(check int) "no failures" 0 (List.length outcome.Ck.Fuzz.failures)

(* --- fault injection: commit-order bug --- *)

let swap_first_two a =
  let a = Array.copy a in
  if Array.length a >= 2 then begin
    let t = a.(0) in
    a.(0) <- a.(1);
    a.(1) <- t
  end;
  a

let injected_report case =
  let program, init_mem = Ck.Gen.build case in
  Ck.Oracle.check ~invariants:false ~inject_commit:swap_first_two program
    ~init_mem

let test_oracle_catches_commit_order () =
  let case =
    {
      Ck.Gen.seed = 0;
      index = 0;
      fragments =
        [
          { Ck.Gen.kind = Ck.Gen.Kernel Ck.Gen.Hash_mix; fseed = 11 };
          { Ck.Gen.kind = Ck.Gen.Branch_dense; fseed = 22 };
          { Ck.Gen.kind = Ck.Gen.Single_braids; fseed = 33 };
        ];
    }
  in
  let report = injected_report case in
  Alcotest.(check bool) "injected bug detected" false (Ck.Oracle.ok report);
  let kinds =
    List.map
      (fun (d : Ck.Oracle.divergence) -> d.Ck.Oracle.kind)
      report.Ck.Oracle.divergences
  in
  Alcotest.(check bool) "commit-order divergence reported" true
    (List.mem "commit-order" kinds);
  (* the uncorrupted oracle accepts the very same case *)
  let program, init_mem = Ck.Gen.build case in
  Alcotest.(check bool) "clean oracle accepts" true
    (Ck.Oracle.ok (Ck.Oracle.check program ~init_mem));
  (* the shrinker minimises: the injection makes every sub-case fail, so
     greedy removal must reach a single fragment whose program is tiny *)
  let fails c = not (Ck.Oracle.ok (injected_report c)) in
  let reduced = Ck.Shrink.shrink ~fails case in
  Alcotest.(check int) "one fragment left" 1
    (List.length reduced.Ck.Gen.fragments);
  let program, _ = Ck.Gen.build reduced in
  Alcotest.(check bool) "reproducer has at most 2 basic blocks" true
    (Array.length program.Program.blocks <= 2);
  Alcotest.(check bool) "reduced case still fails" true (fails reduced)

(* --- invariant monitor: zero-cost when off, silent when clean --- *)

let test_monitor_off_identical () =
  let case = Ck.Gen.generate ~seed:3 ~index:5 in
  let program, init_mem = Ck.Gen.build case in
  let braid = (C.Transform.run program).C.Transform.program in
  let trace =
    Option.get (Emulator.run ~max_steps:200_000 ~init_mem braid).Emulator.trace
  in
  let cfg = U.Config.braid_8wide in
  let warm = List.map fst init_mem in
  let off = U.Pipeline.run ~warm_data:warm cfg trace in
  let dbg = U.Debug.create ~invariants:true cfg in
  let on = U.Pipeline.run ~dbg ~warm_data:warm cfg trace in
  Alcotest.(check bool) "results byte-identical with monitor on" true (off = on);
  Alcotest.(check int) "no violations" 0 (U.Debug.violation_count dbg);
  Alcotest.(check int) "every instruction recorded at commit"
    (Trace.length trace)
    (Array.length (U.Debug.committed dbg));
  (* commits were recorded in fetch order *)
  let committed = U.Debug.committed dbg in
  Alcotest.(check bool) "commit order is fetch order" true
    (Array.for_all (fun i -> committed.(i) = i)
       (Array.init (Array.length committed) Fun.id))

let test_debug_off_sink () =
  Alcotest.(check bool) "off disabled" false (U.Debug.enabled U.Debug.off);
  Alcotest.(check bool) "off not checking" false (U.Debug.checking U.Debug.off);
  Alcotest.(check int) "off has no violations" 0
    (U.Debug.violation_count U.Debug.off);
  Alcotest.(check int) "off records nothing" 0
    (Array.length (U.Debug.committed U.Debug.off));
  let dbg = U.Debug.create ~invariants:false U.Config.braid_8wide in
  Alcotest.(check bool) "recorder enabled" true (U.Debug.enabled dbg);
  Alcotest.(check bool) "recorder not checking" false (U.Debug.checking dbg)

(* --- direct hook checks --- *)

let nop_event uid =
  {
    Trace.uid;
    pc = 4 * uid;
    block_id = 0;
    offset = uid;
    instr = Instr.make Op.Nop;
    deps = [||];
    addr = -1;
    is_load = false;
    is_store = false;
    is_cond_branch = false;
    is_jump = false;
    taken = false;
    next_pc = 4 * (uid + 1);
    latency = 1;
    writes_ext = false;
    writes_int = false;
    ext_src_reads = 0;
    int_src_reads = 0;
    braid_id = -1;
    braid_start = false;
    faulting = false;
  }

let test_debug_commit_order_hook () =
  let dbg = U.Debug.create U.Config.in_order_8wide in
  U.Debug.on_commit dbg ~cycle:0 (nop_event 0);
  U.Debug.on_commit dbg ~cycle:1 (nop_event 2);
  (* skipped uid 1 *)
  Alcotest.(check int) "violation recorded" 1 (U.Debug.violation_count dbg);
  match U.Debug.violations dbg with
  | [ v ] ->
      Alcotest.(check string) "invariant name" "commit.order"
        v.U.Debug.invariant;
      Alcotest.(check int) "offending uid" 2 v.U.Debug.uid
  | vs -> Alcotest.failf "expected exactly one violation, got %d" (List.length vs)

let test_debug_extfile_capacity_hook () =
  let cfg = { U.Config.in_order_8wide with U.Config.ext_regs = 2 } in
  let dbg = U.Debug.create cfg in
  let ext_write uid =
    { (nop_event uid) with
      Trace.instr =
        Instr.make (Op.Movi (Reg.ext Reg.Cint uid, Int64.of_int uid));
      writes_ext = true }
  in
  U.Debug.on_dispatch dbg ~cycle:0 ~beu:(-1) (ext_write 0);
  U.Debug.on_dispatch dbg ~cycle:0 ~beu:(-1) (ext_write 1);
  Alcotest.(check int) "at capacity: fine" 0 (U.Debug.violation_count dbg);
  U.Debug.on_dispatch dbg ~cycle:1 ~beu:(-1) (ext_write 2);
  Alcotest.(check int) "over capacity flagged" 1 (U.Debug.violation_count dbg);
  U.Debug.on_ext_release dbg ~cycle:2 ~uid:0;
  U.Debug.on_ext_release dbg ~cycle:2 ~uid:1;
  U.Debug.on_ext_release dbg ~cycle:2 ~uid:2;
  U.Debug.on_ext_release dbg ~cycle:2 ~uid:0;
  (* fourth release: more frees than allocations *)
  Alcotest.(check int) "double release flagged" 2 (U.Debug.violation_count dbg)

let suite =
  ( "check",
    [
      Alcotest.test_case "generator deterministic" `Quick
        test_generate_deterministic;
      Alcotest.test_case "subset rebuild stable" `Quick
        test_subset_rebuild_stable;
      Alcotest.test_case "fuzz 40 cases clean" `Slow test_fuzz_clean;
      Alcotest.test_case "oracle catches injected commit-order bug" `Quick
        test_oracle_catches_commit_order;
      Alcotest.test_case "monitor off is byte-identical" `Quick
        test_monitor_off_identical;
      Alcotest.test_case "debug off sink" `Quick test_debug_off_sink;
      Alcotest.test_case "commit-order hook" `Quick
        test_debug_commit_order_hook;
      Alcotest.test_case "extfile capacity hook" `Quick
        test_debug_extfile_capacity_hook;
    ] )
