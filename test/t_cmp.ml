(* CMP (multicore rate-mode) tests: the Mem_hier passthrough proof — a
   1-core CMP over the solo L2 geometry reproduces every golden
   (bench × core) cycle count bit-for-bit — plus pinned golden CMP
   numbers for 2- and 4-core mixes, the 2-core differential fuzz, and
   the typed Config/axis/cache plumbing the cores axis rides on. *)

module Suite = Braid_sim.Suite
module U = Braid_uarch
module Config = Braid_uarch.Config
module Cmp = Braid_cmp.Cmp
module Cmp_bench = Braid_cmp.Cmp_bench
module Obs = Braid_obs

let ctx = lazy (Suite.create_ctx ())

let kind_of_golden = function
  | T_golden.In_order -> Config.In_order
  | T_golden.Ooo -> Config.Ooo
  | T_golden.Braid -> Config.Braid_exec
  | T_golden.Cgooo -> Config.Cgooo

(* --- Core_kind: the typed core-name vocabulary --- *)

let test_core_kind_roundtrip () =
  List.iter
    (fun k ->
      let s = Config.Core_kind.to_string k in
      match Config.Core_kind.of_string s with
      | Ok k' -> Alcotest.(check bool) ("round-trip " ^ s) true (k = k')
      | Error m -> Alcotest.fail m)
    Config.Core_kind.all;
  (match Config.Core_kind.of_string "  BRAID " with
  | Ok Config.Braid_exec -> ()
  | _ -> Alcotest.fail "case-insensitive trim");
  match Config.Core_kind.of_string "hyperscalar" with
  | Ok _ -> Alcotest.fail "unknown kind accepted"
  | Error m ->
      (* one shared typed error listing every valid name *)
      List.iter
        (fun name ->
          Alcotest.(check bool)
            ("error lists " ^ name)
            true
            (Astring_contains.contains m name))
        Config.Core_kind.names

(* --- Config.Cmp: the typed cmp section --- *)

let test_cmp_config () =
  let solo_l2 = Config.default_memory.Config.l2 in
  let l2_4 = Config.Cmp.default_l2 4 in
  Alcotest.(check int)
    "default_l2 scales capacity by core count"
    (4 * solo_l2.Config.size_bytes)
    l2_4.Config.size_bytes;
  Alcotest.(check int) "line size unchanged" solo_l2.Config.line_bytes
    l2_4.Config.line_bytes;
  let cmp = Config.Cmp.make ~cores:3 ~workloads:[ "gzip"; "mcf" ] () in
  Alcotest.(check int) "cores" 3 cmp.Config.Cmp.cores;
  Alcotest.(check string) "round-robin 0" "gzip" (Config.Cmp.workload_of cmp 0);
  Alcotest.(check string) "round-robin 1" "mcf" (Config.Cmp.workload_of cmp 1);
  Alcotest.(check string) "round-robin 2" "gzip" (Config.Cmp.workload_of cmp 2);
  (match Config.Cmp.validate cmp with
  | Ok _ -> ()
  | Error m -> Alcotest.fail m);
  (match Config.Cmp.validate { cmp with Config.Cmp.cores = 0 } with
  | Ok _ -> Alcotest.fail "0 cores accepted"
  | Error _ -> ());
  (match Config.Cmp.validate { cmp with Config.Cmp.cores = 65 } with
  | Ok _ -> Alcotest.fail "65 cores accepted (sharer masks are one word)"
  | Error _ -> ());
  match Config.Cmp.validate { cmp with Config.Cmp.workloads = [] } with
  | Ok _ -> Alcotest.fail "empty workload list accepted"
  | Error _ -> ()

(* --- solo equivalence: the passthrough proof ---

   A 1-core CMP over the *solo* L2 geometry (not the scaled default)
   performs the exact same cache-access sequence as the private
   hierarchy, so it must land on every golden cycle count exactly, and
   its internally-computed solo baseline must agree (slowdown 1.0). *)

let test_solo_equivalence () =
  let ctx = Lazy.force ctx in
  List.iter
    (fun (bench, core, instrs, cycles) ->
      let kind = kind_of_golden core in
      let cfg = Config.preset_of_kind kind in
      let cmp =
        Config.Cmp.make
          ~l2:(Some cfg.Config.mem.Config.l2)
          ~cores:1 ~workloads:[ bench ] ()
      in
      let r = Cmp_bench.run ctx ~seed:1 ~scale:1200 ~cfg cmp in
      let label =
        Printf.sprintf "%s/%s" bench (Config.Core_kind.to_string kind)
      in
      let c0 = List.hd r.Cmp.cores in
      Alcotest.(check int)
        (label ^ " instructions")
        instrs c0.Cmp.result.U.Core.instructions;
      Alcotest.(check int) (label ^ " cycles") cycles c0.Cmp.result.U.Core.cycles;
      Alcotest.(check (float 0.0)) (label ^ " slowdown") 1.0 c0.Cmp.slowdown;
      Alcotest.(check (float 0.0))
        (label ^ " weighted speedup")
        1.0 r.Cmp.weighted_speedup;
      Alcotest.(check bool)
        (label ^ " no coherence traffic")
        true
        (r.Cmp.coherence.U.Mem_hier.invalidations = 0
        && r.Cmp.coherence.U.Mem_hier.downgrades = 0);
      Alcotest.(check (list string)) (label ^ " legal directory") [] r.Cmp.violations)
    T_golden.golden

(* --- golden CMP numbers: 2- and 4-core mixes, scale 1200, seed 1,
   braid cores over the default (capacity-scaled) shared L2 ---

   (bench, cycles, instructions) per core in core order, then global
   cycles, shared-L2 (hits, misses) and coherence
   (invalidations, downgrades, writebacks, remote_hits) — harvested from
   `braidsim cmp <mix> --scale 1200`, which exercises the identical
   Cmp_bench path. *)

let golden_cmp =
  [
    ( [ "gzip"; "crafty" ],
      2,
      [ ("gzip", 2605, 3309); ("crafty", 2694, 4254) ],
      2694,
      (177, 1),
      (47, 50, 53, 73) );
    ( [ "bzip2"; "mcf" ],
      2,
      [ ("bzip2", 2483, 3418); ("mcf", 1001, 975) ],
      2483,
      (224, 2),
      (2, 1, 1, 4) );
    ( [ "swim"; "art" ],
      2,
      [ ("swim", 1998, 8984); ("art", 3924, 11739) ],
      3924,
      (752, 67),
      (0, 0, 0, 5) );
    ( [ "gzip"; "crafty"; "bzip2"; "mcf" ],
      4,
      [
        ("gzip", 3097, 3309);
        ("crafty", 2736, 4254);
        ("bzip2", 3038, 3418);
        ("mcf", 1001, 975);
      ],
      3097,
      (493, 2),
      (176, 153, 159, 220) );
    ( [ "equake" ],
      4,
      [
        ("equake", 1253, 3740);
        ("equake", 1253, 3740);
        ("equake", 1253, 3740);
        ("equake", 1253, 3740);
      ],
      1253,
      (1009, 19),
      (501, 0, 501, 381) );
  ]

let check_golden_cmp (benches, cores, per_core, cycles, l2, coh) () =
  let ctx = Lazy.force ctx in
  let cfg = Config.braid_8wide in
  let cmp = Config.Cmp.make ~cores ~workloads:benches () in
  let r = Cmp_bench.run ctx ~seed:1 ~scale:1200 ~cfg cmp in
  let label = String.concat "+" benches in
  List.iter2
    (fun expected got ->
      let bench, ecycles, einstrs = expected in
      Alcotest.(check string)
        (Printf.sprintf "%s core%d bench" label got.Cmp.core_id)
        bench got.Cmp.bench;
      Alcotest.(check int)
        (Printf.sprintf "%s core%d cycles" label got.Cmp.core_id)
        ecycles got.Cmp.result.U.Core.cycles;
      Alcotest.(check int)
        (Printf.sprintf "%s core%d instructions" label got.Cmp.core_id)
        einstrs got.Cmp.result.U.Core.instructions)
    per_core r.Cmp.cores;
  Alcotest.(check int) (label ^ " global cycles") cycles r.Cmp.cycles;
  let l2_hits, l2_misses = l2 in
  Alcotest.(check int) (label ^ " l2 hits") l2_hits r.Cmp.l2_hits;
  Alcotest.(check int) (label ^ " l2 misses") l2_misses r.Cmp.l2_misses;
  let inv, down, wb, rh = coh in
  let c = r.Cmp.coherence in
  Alcotest.(check int) (label ^ " invalidations") inv c.U.Mem_hier.invalidations;
  Alcotest.(check int) (label ^ " downgrades") down c.U.Mem_hier.downgrades;
  Alcotest.(check int) (label ^ " writebacks") wb c.U.Mem_hier.writebacks;
  Alcotest.(check int) (label ^ " remote hits") rh c.U.Mem_hier.remote_hits;
  Alcotest.(check (list string)) (label ^ " legal directory") [] r.Cmp.violations

(* --- differential fuzz: sharing the backside never changes architecture --- *)

let test_cmp_diff () =
  for index = 0 to 5 do
    let r = Braid_check.Cmp_diff.check ~seed:7 ~index () in
    Alcotest.(check string)
      (Printf.sprintf "2-core case %d clean" index)
      "" (Braid_check.Cmp_diff.render r);
    Alcotest.(check bool) "ok" true (Braid_check.Cmp_diff.ok r)
  done

let test_cmp_diff_wide () =
  let r = Braid_check.Cmp_diff.check ~cores:4 ~seed:11 ~index:0 () in
  Alcotest.(check string) "4-core case clean" "" (Braid_check.Cmp_diff.render r);
  let r = Braid_check.Cmp_diff.check ~kind:Config.Ooo ~seed:11 ~index:1 () in
  Alcotest.(check string) "ooo case clean" "" (Braid_check.Cmp_diff.render r)

(* --- per-core counter namespacing --- *)

let test_scoped_counters () =
  let obs = Obs.Sink.create () in
  let core0 = Obs.Sink.scoped obs "core0." in
  let core1 = Obs.Sink.scoped obs "core1." in
  Obs.Counters.add (Obs.Sink.counter core0 "commit.instrs") 7;
  Obs.Counters.add (Obs.Sink.counter core1 "commit.instrs") 9;
  Obs.Counters.add (Obs.Sink.counter obs "l2.hits") 3;
  let count name =
    match Obs.Counters.find (Obs.Sink.counters obs) name with
    | Some (Obs.Counters.Count n) -> n
    | _ -> Alcotest.fail ("missing counter " ^ name)
  in
  Alcotest.(check int) "core0 namespaced" 7 (count "core0.commit.instrs");
  Alcotest.(check int) "core1 namespaced" 9 (count "core1.commit.instrs");
  Alcotest.(check int) "shared unprefixed" 3 (count "l2.hits");
  let off = Obs.Sink.scoped Obs.Sink.disabled "core0." in
  Alcotest.(check bool) "disabled scopes to itself" false (Obs.Sink.enabled off)

(* --- the cores pseudo-axis: grid and cache plumbing --- *)

let test_cores_axis () =
  (match Braid_dse.Axis.of_spec "cores=1,2,4" with
  | Ok _ -> ()
  | Error m -> Alcotest.fail m);
  (match Braid_dse.Axis.of_spec "cores=0,2" with
  | Ok _ -> ()  (* axis syntax is fine; the grid bounds the value *)
  | Error m -> Alcotest.fail m);
  let axes =
    match Braid_dse.Axis.of_spec "cores=1,2" with
    | Ok a -> [ a ]
    | Error m -> Alcotest.fail m
  in
  match
    Braid_dse.Grid.expand ~base:Config.braid_8wide ~mode:Braid_dse.Grid.Cartesian
      axes
  with
  | Error m -> Alcotest.fail m
  | Ok points ->
      Alcotest.(check (list int))
        "cores reach the points"
        [ 1; 2 ]
        (List.map (fun p -> p.Braid_dse.Grid.cores) points);
      List.iter
        (fun p ->
          (* "cores" is a pseudo-axis: it must never reach Config.override *)
          Alcotest.(check string)
            "config digest independent of cores"
            (Config.digest Config.braid_8wide)
            (Config.digest p.Braid_dse.Grid.config))
        points

let test_cores_axis_bounds () =
  let axes =
    match Braid_dse.Axis.of_spec "cores=0" with
    | Ok a -> [ a ]
    | Error m -> Alcotest.fail m
  in
  match
    Braid_dse.Grid.expand ~base:Config.braid_8wide ~mode:Braid_dse.Grid.Cartesian
      axes
  with
  | Ok _ -> Alcotest.fail "cores=0 point accepted"
  | Error m ->
      Alcotest.(check bool)
        ("bounds named: " ^ m)
        true
        (Astring_contains.contains m "cores")

let test_cache_cmp_roundtrip () =
  let dir = Filename.temp_file "braid-cmp-cache" "" in
  Sys.remove dir;
  let cache =
    match Braid_dse.Cache.open_dir dir with
    | Ok c -> c
    | Error m -> Alcotest.fail m
  in
  let key cores =
    {
      Braid_dse.Cache.config_digest = "abc123";
      bench = "gzip";
      seed = 1;
      scale = 1200;
      binary = "braid";
      ext_usable = 16;
      sampling = "";
      cores;
    }
  in
  let extra =
    {
      Braid_dse.Cache.per_core = [ (2619, 3309); (2818, 4384) ];
      solo = [ 2490; 2714 ];
      invalidations = 50;
      downgrades = 52;
      writebacks = 57;
      remote_hits = 74;
      l2_hits = 180;
      l2_misses = 2;
    }
  in
  let entry =
    { Braid_dse.Cache.cycles = 2818; instructions = 7693; cmp = Some extra }
  in
  Braid_dse.Cache.store cache (key 2) entry;
  (match Braid_dse.Cache.find cache (key 2) with
  | Some e -> Alcotest.(check bool) "cmp entry round-trips" true (e = entry)
  | None -> Alcotest.fail "cmp entry missing");
  (* the solo key must not alias the CMP entry *)
  Alcotest.(check bool)
    "cores is part of the address" true
    (Braid_dse.Cache.find cache (key 1) = None);
  (* a CMP key whose stored payload lacks the cmp extras is a miss, not
     a crash and not a bogus hit *)
  Braid_dse.Cache.store cache (key 4)
    { Braid_dse.Cache.cycles = 100; instructions = 200; cmp = None };
  Alcotest.(check bool)
    "incomplete CMP payload degrades to a miss" true
    (Braid_dse.Cache.find cache (key 4) = None);
  (* solo entries keep their pre-CMP shape and behaviour *)
  let solo_entry =
    { Braid_dse.Cache.cycles = 2490; instructions = 3309; cmp = None }
  in
  Braid_dse.Cache.store cache (key 1) solo_entry;
  match Braid_dse.Cache.find cache (key 1) with
  | Some e -> Alcotest.(check bool) "solo entry round-trips" true (e = solo_entry)
  | None -> Alcotest.fail "solo entry missing"

let test_sweep_cores_axis () =
  let ctx = Lazy.force ctx in
  let axes =
    match Braid_dse.Axis.of_spec "cores=1,2" with
    | Ok a -> [ a ]
    | Error m -> Alcotest.fail m
  in
  let points =
    match
      Braid_dse.Grid.expand ~base:Config.braid_8wide ~mode:Braid_dse.Grid.Cartesian
        axes
    with
    | Ok p -> p
    | Error m -> Alcotest.fail m
  in
  let benches = [ Braid_workload.Spec.find "gzip" ] in
  let outcome =
    Braid_dse.Sweep.run ~ctx ~jobs:1 ~seed:1 ~scale:300 ~benches points
  in
  match outcome.Braid_dse.Sweep.results with
  | [ solo; cmp2 ] ->
      let solo_run = List.hd solo.Braid_dse.Sweep.runs in
      let cmp_run = List.hd cmp2.Braid_dse.Sweep.runs in
      Alcotest.(check bool)
        "solo point has no cmp extras" true
        (solo_run.Braid_dse.Sweep.cmp = None);
      let extra =
        match cmp_run.Braid_dse.Sweep.cmp with
        | Some e -> e
        | None -> Alcotest.fail "cmp point lost its extras"
      in
      Alcotest.(check int)
        "one (cycles, instructions) pair per core" 2
        (List.length extra.Braid_dse.Cache.per_core);
      (* rate-mode aggregate: per-core IPCs summed, recomputed from the
         cached integers *)
      let expected_ipc =
        List.fold_left
          (fun acc (c, i) -> acc +. (float_of_int i /. float_of_int (max 1 c)))
          0.0 extra.Braid_dse.Cache.per_core
      in
      Alcotest.(check (float 1e-12))
        "aggregate ipc" expected_ipc cmp_run.Braid_dse.Sweep.ipc;
      Alcotest.(check bool)
        "2-core throughput beats solo" true
        (cmp_run.Braid_dse.Sweep.ipc > solo_run.Braid_dse.Sweep.ipc);
      (* complexity scales with the tile count *)
      Alcotest.(check (float 1e-9))
        "complexity is per-core complexity × cores"
        (2.0 *. solo.Braid_dse.Sweep.complexity)
        cmp2.Braid_dse.Sweep.complexity
  | l -> Alcotest.fail (Printf.sprintf "expected 2 points, got %d" (List.length l))

(* --- Cmp.run argument validation --- *)

let test_run_validation () =
  let cfg = Config.braid_8wide in
  let cmp = Config.Cmp.make ~cores:2 ~workloads:[ "gzip" ] () in
  (match Cmp.run ~cfg ~cmp [||] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty workload array accepted");
  let solo =
    Cmp_bench.resolve (Lazy.force ctx) ~seed:1 ~scale:300 ~cfg
      (Config.Cmp.make ~cores:1 ~workloads:[ "gzip" ] ())
  in
  (match Cmp.run ~cfg ~cmp solo with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "1 workload for 2 cores accepted");
  match Cmp_bench.resolve (Lazy.force ctx) ~seed:1 ~scale:300 ~cfg
          (Config.Cmp.make ~cores:1 ~workloads:[ "nope" ] ())
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unknown benchmark accepted"

let suite =
  ( "cmp",
    [
      Alcotest.test_case "core-kind vocabulary" `Quick test_core_kind_roundtrip;
      Alcotest.test_case "cmp config" `Quick test_cmp_config;
      Alcotest.test_case "solo equivalence (26×3 golden)" `Slow
        test_solo_equivalence;
    ]
    @ List.map
        (fun row ->
          let benches, cores, _, _, _, _ = row in
          Alcotest.test_case
            (Printf.sprintf "golden %d-core %s" cores
               (String.concat "+" benches))
            `Slow (check_golden_cmp row))
        golden_cmp
    @ [
        Alcotest.test_case "2-core differential fuzz" `Slow test_cmp_diff;
        Alcotest.test_case "4-core and ooo fuzz" `Slow test_cmp_diff_wide;
        Alcotest.test_case "scoped counters" `Quick test_scoped_counters;
        Alcotest.test_case "cores pseudo-axis" `Quick test_cores_axis;
        Alcotest.test_case "cores bounds" `Quick test_cores_axis_bounds;
        Alcotest.test_case "cache cmp entries" `Quick test_cache_cmp_roundtrip;
        Alcotest.test_case "sweep cores axis" `Slow test_sweep_cores_axis;
        Alcotest.test_case "run validation" `Quick test_run_validation;
      ] )
