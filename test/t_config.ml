(* The first-class configuration API: JSON round-trips, content digests,
   validation, and the string-level override primitive that backs
   `braidsim sweep --axis`. *)

module Config = Braid_uarch.Config


let test_json_roundtrip () =
  List.iter
    (fun (c : Config.t) ->
      match Config.of_json (Config.to_json c) with
      | Ok c' ->
          Alcotest.(check bool)
            ("round-trip " ^ c.Config.name)
            true (c = c')
      | Error msg -> Alcotest.fail (c.Config.name ^ ": " ^ msg))
    Config.presets

(* of_json accepts fields in any order, and the digest is computed from the
   canonical rendering, so a reordered document parses back to a config
   with an unchanged digest. *)
let test_digest_field_order () =
  let c = Config.braid_8wide in
  let reordered =
    match Json.parse_exn (Config.to_json c) with
    | Json.Obj members -> Json.to_string (Json.Obj (List.rev members))
    | _ -> Alcotest.fail "to_json did not produce an object"
  in
  match Config.of_json reordered with
  | Ok c' ->
      Alcotest.(check bool) "reordered document parses equal" true (c = c');
      Alcotest.(check string) "digest independent of field order"
        (Config.digest c) (Config.digest c')
  | Error msg -> Alcotest.fail msg

let test_digest_semantics () =
  let c = Config.braid_8wide in
  Alcotest.(check string) "digest ignores the name"
    (Config.digest c)
    (Config.digest { c with Config.name = "something-else" });
  let bumped =
    match Config.override c [ ("ext_regs", "16") ] with
    | Ok c' -> c'
    | Error msg -> Alcotest.fail msg
  in
  Alcotest.(check bool) "digest changes with any parameter" true
    (Config.digest c <> Config.digest bumped);
  Alcotest.(check bool) "digest is hex" true
    (String.for_all
       (function '0' .. '9' | 'a' .. 'f' -> true | _ -> false)
       (Config.digest c))

let test_presets_validate () =
  List.iter
    (fun (c : Config.t) ->
      match Config.validate c with
      | Ok _ -> ()
      | Error msg -> Alcotest.fail (c.Config.name ^ " rejected: " ^ msg))
    Config.presets

let rejects what kvs expected_fragments =
  let c =
    match Config.override Config.braid_8wide kvs with
    | Ok c -> c
    | Error msg -> Alcotest.fail (what ^ ": override failed: " ^ msg)
  in
  match Config.validate c with
  | Ok _ -> Alcotest.fail (what ^ ": expected validation to fail")
  | Error msg ->
      List.iter
        (fun fragment ->
          Alcotest.(check bool)
            (what ^ " error mentions " ^ fragment)
            true
            (Astring_contains.contains msg fragment))
        expected_fragments

let test_validate_rejections () =
  rejects "zero clusters" [ ("clusters", "0") ] [ "clusters" ];
  rejects "zero fetch width" [ ("fetch_width", "0") ] [ "fetch_width" ];
  rejects "zero external registers" [ ("ext_regs", "0") ] [ "ext_regs" ];
  rejects "window beyond FIFO"
    [ ("sched_window", "64"); ("cluster_entries", "32") ]
    [ "sched_window" ];
  rejects "zero memory latency" [ ("memory_latency", "0") ] [ "memory_latency" ];
  rejects "degenerate cache geometry"
    [ ("l1d.size_bytes", "64"); ("l1d.ways", "4"); ("l1d.line_bytes", "64") ]
    [ "l1d" ];
  (* the error aggregates every violated rule, not just the first *)
  rejects "aggregated errors"
    [ ("clusters", "0"); ("fetch_width", "0") ]
    [ "clusters"; "fetch_width" ]

(* Overriding any sweepable field with its current rendering is the
   identity, proving get/override agree on every field's syntax. *)
let test_override_every_field () =
  List.iter
    (fun (c : Config.t) ->
      List.iter
        (fun field ->
          match Config.get c field with
          | Error msg -> Alcotest.fail (field ^ ": get failed: " ^ msg)
          | Ok v -> (
              match Config.override c [ (field, v) ] with
              | Error msg -> Alcotest.fail (field ^ ": override failed: " ^ msg)
              | Ok c' ->
                  Alcotest.(check bool)
                    (c.Config.name ^ ": self-override of " ^ field
                   ^ " is the identity")
                    true (c = c')))
        Config.sweepable_fields)
    Config.presets

let test_override_values () =
  let ok kvs =
    match Config.override Config.braid_8wide kvs with
    | Ok c -> c
    | Error msg -> Alcotest.fail msg
  in
  let c = ok [ ("kind", "ooo"); ("predictor", "gshare") ] in
  Alcotest.(check bool) "kind parsed" true (c.Config.kind = Config.Ooo);
  Alcotest.(check bool) "predictor parsed" true
    (c.Config.predictor = Config.Gshare);
  let c = ok [ ("beu_out_of_order", "true"); ("l1d.latency", "7") ] in
  Alcotest.(check bool) "bool parsed" true c.Config.beu_out_of_order;
  Alcotest.(check int) "nested memory field parsed" 7
    c.Config.mem.Config.l1d.Config.latency;
  Alcotest.(check int) "other geometry fields untouched"
    Config.braid_8wide.Config.mem.Config.l1d.Config.size_bytes
    c.Config.mem.Config.l1d.Config.size_bytes

let test_override_errors () =
  (match Config.override Config.braid_8wide [ ("no_such_field", "1") ] with
  | Ok _ -> Alcotest.fail "unknown field accepted"
  | Error msg ->
      List.iter
        (fun fragment ->
          Alcotest.(check bool) ("unknown-field error lists " ^ fragment) true
            (Astring_contains.contains msg fragment))
        [ "no_such_field"; "ext_regs"; "sched_window"; "l1d.latency" ]);
  (match Config.override Config.braid_8wide [ ("ext_regs", "many") ] with
  | Ok _ -> Alcotest.fail "bad integer accepted"
  | Error msg ->
      Alcotest.(check bool) "bad-value error names the field" true
        (Astring_contains.contains msg "ext_regs"));
  match Config.override Config.braid_8wide [ ("kind", "vliw") ] with
  | Ok _ -> Alcotest.fail "bad kind accepted"
  | Error msg ->
      Alcotest.(check bool) "bad-kind error names the kinds" true
        (Astring_contains.contains msg "braid")

let test_of_json_errors () =
  (match Config.of_json "[1,2]" with
  | Ok _ -> Alcotest.fail "non-object accepted"
  | Error _ -> ());
  (match Config.of_json {|{"name":"x"}|} with
  | Ok _ -> Alcotest.fail "missing fields accepted"
  | Error msg ->
      Alcotest.(check bool) "missing-field error names one" true
        (Astring_contains.contains msg "kind"));
  match Config.of_json {|{"bogus":1}|} with
  | Ok _ -> Alcotest.fail "unknown field accepted"
  | Error _ -> ()

let test_kind_strings () =
  List.iter
    (fun k ->
      match Config.kind_of_string (Config.kind_to_string k) with
      | Ok k' -> Alcotest.(check bool) "kind round-trips" true (k = k')
      | Error msg -> Alcotest.fail msg)
    [
      Config.In_order;
      Config.Dep_steer;
      Config.Ooo;
      Config.Braid_exec;
      Config.Cgooo;
    ];
  List.iter
    (fun p ->
      match Config.predictor_of_string (Config.predictor_to_string p) with
      | Ok p' -> Alcotest.(check bool) "predictor round-trips" true (p = p')
      | Error msg -> Alcotest.fail msg)
    [ Config.Perceptron; Config.Gshare; Config.Perfect_prediction ]

let suite =
  ( "config-api",
    [
      Alcotest.test_case "json round-trip (all presets)" `Quick
        test_json_roundtrip;
      Alcotest.test_case "digest stable under field reorder" `Quick
        test_digest_field_order;
      Alcotest.test_case "digest semantics" `Quick test_digest_semantics;
      Alcotest.test_case "presets validate" `Quick test_presets_validate;
      Alcotest.test_case "validate rejections" `Quick test_validate_rejections;
      Alcotest.test_case "override every sweepable field" `Quick
        test_override_every_field;
      Alcotest.test_case "override typed values" `Quick test_override_values;
      Alcotest.test_case "override errors" `Quick test_override_errors;
      Alcotest.test_case "of_json errors" `Quick test_of_json_errors;
      Alcotest.test_case "kind/predictor strings" `Quick test_kind_strings;
    ] )
