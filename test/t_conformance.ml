(* Cross-core conformance: one shared battery, every registered core
   kind. The pluggable-core contract says a new execution paradigm may
   change *when* instructions issue but never *what* the machine
   computes, so each battery row is written once against
   [Config.Core_kind.all] and a future kind is conformance-tested the day
   it is registered:

   - commit-stream equality vs the emulator across all 26 benchmarks,
     with the invariant monitor armed and the instruction-flow counters
     balanced;
   - the RV32IM fixture differential oracle per kind;
   - serve-vs-one-shot byte identity of `run` through braidsim-api/1.

   The battery must also *fail* on a core that breaks the rules: the
   injection tests corrupt a CG-OoO block window's issue order (the
   monitor must name cgooo.block-order) and a cgooo commit stream (the
   oracle must name commit-order). *)

module C = Braid_core
module U = Braid_uarch
module Spec = Braid_workload.Spec
module Ck = Braid_check
module Rv = Braid_rv
module Obs = Braid_obs
module Api = Braid_api
module Req = Braid_api.Request
module Resp = Braid_api.Response

let kinds = U.Config.Core_kind.all
let kind_name = U.Config.Core_kind.to_string

let binary_for kind program =
  match kind with
  | U.Config.Braid_exec | U.Config.Cgooo ->
      (C.Transform.run program).C.Transform.program
  | U.Config.In_order | U.Config.Dep_steer | U.Config.Ooo ->
      (C.Transform.conventional program).C.Extalloc.program

let count_of obs name =
  match Obs.Counters.find (Obs.Sink.counters obs) name with
  | Some (Obs.Counters.Count n) -> n
  | _ -> 0

(* --- commit-stream equality + armed invariants, 26 benchmarks --- *)

let commit_stream_battery kind () =
  List.iter
    (fun (p : Spec.profile) ->
      let ctx = Printf.sprintf "%s/%s" p.Spec.name (kind_name kind) in
      let program, init_mem = Spec.generate p ~seed:1 ~scale:1200 in
      let binary = binary_for kind program in
      let out = Emulator.run ~max_steps:100_000 ~init_mem binary in
      Alcotest.(check bool) (ctx ^ ": emulator halted") true
        (out.Emulator.stop = Trace.Halted);
      let trace = Option.get out.Emulator.trace in
      let cfg = U.Config.preset_of_kind kind in
      let dbg = U.Debug.create ~invariants:true cfg in
      let obs = Obs.Sink.create () in
      let r =
        U.Pipeline.run ~obs ~dbg ~warm_data:(List.map fst init_mem) cfg trace
      in
      let n = Trace.length trace in
      Alcotest.(check int) (ctx ^ ": instructions") n r.U.Pipeline.instructions;
      (match U.Debug.violations dbg with
      | [] -> ()
      | v :: _ ->
          Alcotest.failf "%s: %d invariant violation(s), first: %s" ctx
            (U.Debug.violation_count dbg)
            (Format.asprintf "%a" U.Debug.pp_violation v));
      let committed = U.Debug.committed dbg in
      Alcotest.(check int) (ctx ^ ": every instruction committed") n
        (Array.length committed);
      Alcotest.(check bool)
        (ctx ^ ": commit stream equals the emulator's order")
        true
        (Array.for_all
           (fun i -> committed.(i) = i)
           (Array.init (Array.length committed) Fun.id));
      (* instruction-flow conservation: everything dispatched issued,
         everything issued committed *)
      List.iter
        (fun c -> Alcotest.(check int) (ctx ^ ": " ^ c) n (count_of obs c))
        [ "dispatch.instrs"; "issue.instrs"; "commit.instrs" ])
    Spec.all

(* --- RV32IM fixture differential oracle, per kind --- *)

(* every committed fixture except nbody (too large for per-kind timing
   runs; its golden run lives in t_rv) *)
let rv_fixtures =
  [ "fib"; "memcpy"; "sieve"; "dot"; "qsort"; "crc32"; "hello"; "divmix" ]

let rv_oracle_battery kind () =
  List.iter
    (fun name ->
      let img = Option.get (Rv.Fixtures.image name) in
      match Ck.Rv_oracle.check ~cores:[ kind ] img with
      | Error e -> Alcotest.fail (name ^ ": " ^ Rv.Translate.error_to_string e)
      | Ok rep ->
          if not (Ck.Rv_oracle.ok rep) then
            Alcotest.failf "%s/%s:\n%s" name (kind_name kind)
              (Ck.Rv_oracle.render rep))
    rv_fixtures

(* --- serve-vs-one-shot byte identity, per kind --- *)

let serve_battery kind () =
  let req =
    Req.Run
      {
        Req.r_bench = "gzip";
        r_seed = 7;
        r_scale = 600;
        r_core = kind;
        r_width = 8;
        r_sample = None;
      }
  in
  let one_shot =
    match Api.Exec.exec (Api.Exec.one_shot_env ()) req with
    | Ok (Resp.Run_done { text; sampled = None }) -> text
    | Ok _ -> Alcotest.fail "one-shot: unexpected payload"
    | Error m -> Alcotest.fail m
  in
  T_api.with_server ~jobs:1 (fun addr ->
      match T_api.rpc addr req with
      | Ok (Resp.Run_done { text; sampled = None }) ->
          Alcotest.(check string)
            (kind_name kind ^ ": served run byte-identical")
            one_shot text
      | Ok _ -> Alcotest.fail "served: unexpected payload"
      | Error m -> Alcotest.fail m)

(* --- fault injection: the battery must catch a rule-breaking core --- *)

let nop_event uid =
  {
    Trace.uid;
    pc = 4 * uid;
    block_id = 0;
    offset = uid;
    instr = Instr.make Op.Nop;
    deps = [||];
    addr = -1;
    is_load = false;
    is_store = false;
    is_cond_branch = false;
    is_jump = false;
    taken = false;
    next_pc = 4 * (uid + 1);
    latency = 1;
    writes_ext = false;
    writes_int = false;
    ext_src_reads = 0;
    int_src_reads = 0;
    braid_id = -1;
    braid_start = false;
    faulting = false;
  }

let test_block_order_injection () =
  let dbg = U.Debug.create U.Config.cgooo_8wide in
  U.Debug.on_issue dbg ~cycle:0 ~beu:0 ~bypassed:false (nop_event 0);
  U.Debug.on_issue dbg ~cycle:1 ~beu:0 ~bypassed:false (nop_event 2);
  (* a different window has its own order *)
  U.Debug.on_issue dbg ~cycle:1 ~beu:1 ~bypassed:false (nop_event 5);
  Alcotest.(check int) "in-order issues pass" 0 (U.Debug.violation_count dbg);
  (* uid 1 after uid 2 from the same window: corrupted in-block order *)
  U.Debug.on_issue dbg ~cycle:2 ~beu:0 ~bypassed:false (nop_event 1);
  (match U.Debug.violations dbg with
  | [ v ] ->
      Alcotest.(check string) "invariant name" "cgooo.block-order"
        v.U.Debug.invariant;
      Alcotest.(check int) "offending uid" 1 v.U.Debug.uid
  | vs ->
      Alcotest.failf "expected exactly one violation, got %d" (List.length vs));
  (* the braid core has no block windows: same sequence, monitor silent *)
  let braid_dbg = U.Debug.create U.Config.braid_8wide in
  U.Debug.on_issue braid_dbg ~cycle:0 ~beu:0 ~bypassed:false (nop_event 2);
  U.Debug.on_issue braid_dbg ~cycle:1 ~beu:0 ~bypassed:false (nop_event 1);
  Alcotest.(check int) "braid core unaffected" 0
    (U.Debug.violation_count braid_dbg)

let swap_first_two a =
  let a = Array.copy a in
  if Array.length a >= 2 then begin
    let t = a.(0) in
    a.(0) <- a.(1);
    a.(1) <- t
  end;
  a

let test_oracle_catches_cgooo_commit_corruption () =
  let case = Ck.Gen.generate ~seed:5 ~index:2 in
  let program, init_mem = Ck.Gen.build case in
  let report =
    Ck.Oracle.check ~invariants:false ~cores:[ U.Config.Cgooo ]
      ~inject_commit:swap_first_two program ~init_mem
  in
  Alcotest.(check bool) "corrupted stream rejected" false (Ck.Oracle.ok report);
  let ks =
    List.map
      (fun (d : Ck.Oracle.divergence) -> d.Ck.Oracle.kind)
      report.Ck.Oracle.divergences
  in
  Alcotest.(check bool) "commit-order divergence reported" true
    (List.mem "commit-order" ks);
  (* the uncorrupted stream of the very same case passes *)
  Alcotest.(check bool) "clean oracle accepts" true
    (Ck.Oracle.ok (Ck.Oracle.check ~cores:[ U.Config.Cgooo ] program ~init_mem))

(* --- negative space: the new core survives a deep fuzz run --- *)

let test_fuzz_cgooo_clean () =
  let outcome =
    Ck.Fuzz.run ~invariants:true ~cores:[ U.Config.Cgooo ] ~count:500 ~seed:11
      ()
  in
  Alcotest.(check int) "tested" 500 outcome.Ck.Fuzz.tested;
  Alcotest.(check int) "no failures" 0 (List.length outcome.Ck.Fuzz.failures)

let battery =
  [
    ("commit-stream", commit_stream_battery);
    ("rv-oracle", rv_oracle_battery);
    ("serve-vs-one-shot", serve_battery);
  ]

let suite =
  ( "conformance",
    List.concat_map
      (fun (bname, f) ->
        List.map
          (fun kind ->
            Alcotest.test_case
              (Printf.sprintf "%s/%s" bname (kind_name kind))
              `Slow (f kind))
          kinds)
      battery
    @ [
        Alcotest.test_case "injected block-order corruption caught" `Quick
          test_block_order_injection;
        Alcotest.test_case "injected cgooo commit corruption caught" `Quick
          test_oracle_catches_cgooo_commit_corruption;
        Alcotest.test_case "fuzz 500 cases clean on cgooo" `Slow
          test_fuzz_cgooo_clean;
      ] )
