(* The design-space-exploration subsystem: axis parsing, grid expansion,
   the content-addressed result cache (a warm re-run performs zero
   simulations — proven through the observability counters), and the
   fig6-equivalence guarantee that a sweep reproduces direct Suite runs
   bit-identically. *)

module Config = Braid_uarch.Config
module Spec = Braid_workload.Spec
module Suite = Braid_sim.Suite
module Dse = Braid_dse
module Obs = Braid_obs

let or_fail = function Ok v -> v | Error msg -> Alcotest.fail msg

let axis field values = or_fail (Dse.Axis.make ~field values)

let temp_dir () =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "braid-dse-test-%d" (Unix.getpid ()))
  in
  (* fresh per test run; the cache layer creates it *)
  dir

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let test_axis_spec () =
  let a = or_fail (Dse.Axis.of_spec "ext_regs=4,8,16") in
  Alcotest.(check string) "field" "ext_regs" a.Dse.Axis.field;
  Alcotest.(check (list string)) "values" [ "4"; "8"; "16" ] a.Dse.Axis.values;
  Alcotest.(check string) "spec round-trips" "ext_regs=4,8,16"
    (Dse.Axis.to_spec a);
  (match Dse.Axis.of_spec "no_such=1" with
  | Ok _ -> Alcotest.fail "unknown field accepted"
  | Error msg ->
      Alcotest.(check bool) "error lists sweepable fields" true
        (Astring_contains.contains msg "ext_regs"));
  (match Dse.Axis.of_spec "ext_regs=" with
  | Ok _ -> Alcotest.fail "empty values accepted"
  | Error _ -> ());
  match Dse.Axis.make ~field:"ext_regs" [ "8"; "8" ] with
  | Ok _ -> Alcotest.fail "duplicate values accepted"
  | Error _ -> ()

let test_grid_cartesian () =
  let axes =
    [ axis "ext_regs" [ "4"; "8" ]; axis "sched_window" [ "1"; "2" ] ]
  in
  let points =
    or_fail (Dse.Grid.expand ~base:Config.braid_8wide ~mode:Dse.Grid.Cartesian axes)
  in
  Alcotest.(check int) "2x2 grid" 4 (List.length points);
  Alcotest.(check (list string)) "labels, first axis outermost"
    [
      "ext_regs=4,sched_window=1";
      "ext_regs=4,sched_window=2";
      "ext_regs=8,sched_window=1";
      "ext_regs=8,sched_window=2";
    ]
    (List.map (fun (p : Dse.Grid.point) -> p.Dse.Grid.label) points);
  List.iter
    (fun (p : Dse.Grid.point) ->
      Alcotest.(check string) "point renamed base+label"
        (Config.braid_8wide.Config.name ^ "+" ^ p.Dse.Grid.label)
        p.Dse.Grid.config.Config.name)
    points;
  let last = List.nth points 3 in
  Alcotest.(check int) "override applied" 8
    last.Dse.Grid.config.Config.ext_regs;
  Alcotest.(check int) "second override applied" 2
    last.Dse.Grid.config.Config.sched_window

let test_grid_one_at_a_time () =
  let axes =
    [ axis "ext_regs" [ "4"; "16" ]; axis "clusters" [ "2"; "4" ] ]
  in
  let points =
    or_fail
      (Dse.Grid.expand ~base:Config.braid_8wide ~mode:Dse.Grid.One_at_a_time axes)
  in
  Alcotest.(check (list string)) "base plus each single deviation"
    [ "base"; "ext_regs=4"; "ext_regs=16"; "clusters=2"; "clusters=4" ]
    (List.map (fun (p : Dse.Grid.point) -> p.Dse.Grid.label) points)

let test_grid_rejects_invalid_point () =
  (* ext_regs=0 parses but does not validate: the whole grid must fail
     before any simulation can be scheduled *)
  (match
     Dse.Grid.expand ~base:Config.braid_8wide ~mode:Dse.Grid.Cartesian
       [ axis "ext_regs" [ "8"; "0" ] ]
   with
  | Ok _ -> Alcotest.fail "invalid grid point accepted"
  | Error msg ->
      Alcotest.(check bool) "error names the offending point" true
        (Astring_contains.contains msg "ext_regs"));
  match
    Dse.Grid.expand ~base:Config.braid_8wide ~mode:Dse.Grid.Cartesian
      [ axis "ext_regs" [ "4" ]; axis "ext_regs" [ "8" ] ]
  with
  | Ok _ -> Alcotest.fail "duplicate axis accepted"
  | Error _ -> ()

let counter_value sink name =
  match Obs.Counters.find (Obs.Sink.counters sink) name with
  | Some (Obs.Counters.Count n) -> n
  | _ -> Alcotest.fail ("counter not found: " ^ name)

let strip_provenance (outcome : Dse.Sweep.outcome) =
  List.map
    (fun (pr : Dse.Sweep.point_result) ->
      ( pr.Dse.Sweep.point.Dse.Grid.label,
        pr.Dse.Sweep.digest,
        pr.Dse.Sweep.mean_ipc,
        List.map
          (fun (r : Dse.Sweep.run) ->
            (r.Dse.Sweep.bench, r.Dse.Sweep.cycles, r.Dse.Sweep.instructions,
             r.Dse.Sweep.ipc))
          pr.Dse.Sweep.runs ))
    outcome.Dse.Sweep.results

(* The headline cache guarantee: run a small sweep twice against one cache
   directory — the second run (fresh context, fresh sink) performs zero
   simulations and returns bit-identical results. *)
let test_sweep_cache () =
  let dir = temp_dir () in
  rm_rf dir;
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let points =
        or_fail
          (Dse.Grid.expand ~base:Config.braid_8wide ~mode:Dse.Grid.Cartesian
             [ axis "ext_regs" [ "8"; "16" ] ])
      in
      let benches = [ Spec.find "gzip"; Spec.find "crafty" ] in
      let sweep () =
        let cache = or_fail (Dse.Cache.open_dir dir) in
        let ctx = Suite.create_ctx () in
        let obs = Obs.Sink.create () in
        let outcome =
          Dse.Sweep.run ~obs ~cache ~ctx ~jobs:2 ~seed:1 ~scale:1200 ~benches
            points
        in
        (outcome, obs)
      in
      let cold, cold_obs = sweep () in
      Alcotest.(check int) "cold run simulates everything" 4
        cold.Dse.Sweep.stats.Dse.Sweep.simulated;
      Alcotest.(check int) "cold run hits nothing" 0
        cold.Dse.Sweep.stats.Dse.Sweep.cache_hits;
      Alcotest.(check int) "cold counter dse.simulations" 4
        (counter_value cold_obs "dse.simulations");
      let warm, warm_obs = sweep () in
      Alcotest.(check int) "warm run performs zero simulations" 0
        warm.Dse.Sweep.stats.Dse.Sweep.simulated;
      Alcotest.(check int) "warm run is pure cache reads" 4
        warm.Dse.Sweep.stats.Dse.Sweep.cache_hits;
      Alcotest.(check int) "warm counter dse.simulations" 0
        (counter_value warm_obs "dse.simulations");
      Alcotest.(check int) "warm counter dse.cache_hits" 4
        (counter_value warm_obs "dse.cache_hits");
      Alcotest.(check bool) "cached results bit-identical" true
        (strip_provenance cold = strip_provenance warm);
      List.iter
        (fun (pr : Dse.Sweep.point_result) ->
          List.iter
            (fun (r : Dse.Sweep.run) ->
              Alcotest.(check bool) "warm runs flagged from_cache" true
                r.Dse.Sweep.from_cache)
            pr.Dse.Sweep.runs)
        warm.Dse.Sweep.results;
      (* corrupt one entry: a self-verifying cache degrades it to a miss *)
      let rec first_file path =
        if Sys.is_directory path then
          Array.fold_left
            (fun acc e ->
              match acc with
              | Some _ -> acc
              | None -> first_file (Filename.concat path e))
            None (Sys.readdir path)
        else if Filename.check_suffix path ".json" then Some path
        else None
      in
      (match first_file dir with
      | None -> Alcotest.fail "cache wrote no entries"
      | Some f ->
          let oc = open_out f in
          output_string oc "{\"schema\":\"bogus\"}";
          close_out oc);
      let repaired, _ = sweep () in
      Alcotest.(check int) "corrupt entry re-simulated" 1
        repaired.Dse.Sweep.stats.Dse.Sweep.simulated;
      Alcotest.(check int) "intact entries still hit" 3
        repaired.Dse.Sweep.stats.Dse.Sweep.cache_hits;
      Alcotest.(check bool) "repaired results bit-identical" true
        (strip_provenance cold = strip_provenance repaired))

(* A braid ext_regs sweep must reproduce the Fig 6 methodology exactly:
   recompile with the matching external budget and produce the same IPC a
   direct Suite run does, bit for bit. *)
let test_fig6_equivalence () =
  let values = [ 4; 8; 256 ] in
  let points =
    or_fail
      (Dse.Grid.expand ~base:Config.braid_8wide ~mode:Dse.Grid.Cartesian
         [ axis "ext_regs" (List.map string_of_int values) ])
  in
  let gzip = Spec.find "gzip" in
  let outcome =
    let ctx = Suite.create_ctx () in
    Dse.Sweep.run ~ctx ~jobs:1 ~seed:1 ~scale:2000 ~benches:[ gzip ] points
  in
  let manual_ctx = Suite.create_ctx () in
  List.iter2
    (fun n (pr : Dse.Sweep.point_result) ->
      let cfg = pr.Dse.Sweep.point.Dse.Grid.config in
      Alcotest.(check int) "point carries the swept value" n
        cfg.Config.ext_regs;
      let usable = min n Braid_core.Extalloc.usable_per_class in
      Alcotest.(check int) "braid budget capped at the hardware" usable
        (Dse.Sweep.ext_usable_of cfg);
      let p =
        Suite.prepare manual_ctx ~seed:1 ~scale:2000 ~ext_usable:usable gzip
      in
      let r = Suite.run_braid manual_ctx p cfg in
      let run = List.hd pr.Dse.Sweep.runs in
      Alcotest.(check int) "cycles match a direct run"
        r.Braid_uarch.Pipeline.cycles run.Dse.Sweep.cycles;
      Alcotest.(check int) "instructions match a direct run"
        r.Braid_uarch.Pipeline.instructions run.Dse.Sweep.instructions;
      Alcotest.(check bool) "IPC bit-identical to a direct run" true
        (Float.equal r.Braid_uarch.Pipeline.ipc run.Dse.Sweep.ipc))
    values outcome.Dse.Sweep.results

let test_frontier () =
  let points =
    or_fail
      (Dse.Grid.expand ~base:Config.braid_8wide ~mode:Dse.Grid.One_at_a_time
         [ axis "clusters" [ "4" ] ])
  in
  let ctx = Suite.create_ctx () in
  let outcome =
    Dse.Sweep.run ~ctx ~jobs:1 ~seed:1 ~scale:1200
      ~benches:[ Spec.find "gzip" ] points
  in
  let flagged = Dse.Frontier.pareto outcome.Dse.Sweep.results in
  Alcotest.(check int) "every point flagged" 2 (List.length flagged);
  Alcotest.(check bool) "at least one Pareto-optimal point" true
    (List.exists snd flagged);
  let rendered = Dse.Frontier.render outcome in
  List.iter
    (fun fragment ->
      Alcotest.(check bool) ("table mentions " ^ fragment) true
        (Astring_contains.contains rendered fragment))
    [ "base"; "clusters=4"; "simulated" ];
  let axes = [ axis "clusters" [ "4" ] ] in
  let json =
    Dse.Frontier.to_json ~preset:Config.braid_8wide
      ~mode:Dse.Grid.One_at_a_time ~axes ~seed:1 ~scale:1200 outcome
  in
  match Json.parse json with
  | Error msg -> Alcotest.fail ("frontier JSON invalid: " ^ msg)
  | Ok doc ->
      Alcotest.(check bool) "schema stamped" true
        (Json.member "schema" doc
        = Some (Json.Str "braidsim-sweep/1"))

(* --- frontier properties over fabricated sweep results --- *)

let mk_point i (complexity, mean_ipc) =
  {
    Dse.Sweep.point =
      {
        Dse.Grid.label = Printf.sprintf "p%d" i;
        bindings = [];
        config = Config.braid_8wide;
        cores = 1;
      };
    digest = Printf.sprintf "d%d" i;
    complexity;
    mean_ipc;
    runs = [];
  }

let arb_metric_pairs =
  let open QCheck in
  let pair_gen =
    Gen.map
      (fun (c, i) -> (float_of_int c, float_of_int i /. 8.))
      Gen.(pair (int_range 1 40) (int_range 1 40))
  in
  make
    ~print:(fun l ->
      String.concat ";"
        (List.map (fun (c, i) -> Printf.sprintf "(%g,%g)" c i) l))
    Gen.(list_size (int_range 1 12) pair_gen)

let dominates (q : Dse.Sweep.point_result) (p : Dse.Sweep.point_result) =
  q.Dse.Sweep.mean_ipc >= p.Dse.Sweep.mean_ipc
  && q.Dse.Sweep.complexity <= p.Dse.Sweep.complexity
  && (q.Dse.Sweep.mean_ipc > p.Dse.Sweep.mean_ipc
     || q.Dse.Sweep.complexity < p.Dse.Sweep.complexity)

let qcheck_pareto_undominated =
  QCheck.Test.make ~name:"pareto points are undominated" ~count:300
    arb_metric_pairs (fun pairs ->
      let results = List.mapi mk_point pairs in
      List.for_all
        (fun ((p : Dse.Sweep.point_result), optimal) ->
          let beaten = List.exists (fun q -> dominates q p) results in
          if optimal then not beaten else beaten)
        (Dse.Frontier.pareto results))

let shuffle seed l =
  let a = Array.of_list l in
  let rng = Prng.create (Int64.of_int seed) in
  for i = Array.length a - 1 downto 1 do
    let j = Prng.int_in rng 0 i in
    let t = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- t
  done;
  Array.to_list a

let qcheck_pareto_order_independent =
  QCheck.Test.make ~name:"pareto is order-independent" ~count:300
    QCheck.(pair arb_metric_pairs small_nat)
    (fun (pairs, seed) ->
      let results = List.mapi mk_point pairs in
      let optimal l =
        Dse.Frontier.pareto l
        |> List.filter_map (fun ((p : Dse.Sweep.point_result), opt) ->
               if opt then Some p.Dse.Sweep.point.Dse.Grid.label else None)
        |> List.sort compare
      in
      optimal results = optimal (shuffle seed results))

let suite =
  ( "dse",
    [
      Alcotest.test_case "axis spec" `Quick test_axis_spec;
      Alcotest.test_case "grid cartesian" `Quick test_grid_cartesian;
      Alcotest.test_case "grid one-at-a-time" `Quick test_grid_one_at_a_time;
      Alcotest.test_case "grid rejects invalid point" `Quick
        test_grid_rejects_invalid_point;
      Alcotest.test_case "sweep cache" `Slow test_sweep_cache;
      Alcotest.test_case "fig6 equivalence" `Slow test_fig6_equivalence;
      Alcotest.test_case "frontier" `Quick test_frontier;
      QCheck_alcotest.to_alcotest qcheck_pareto_undominated;
      QCheck_alcotest.to_alcotest qcheck_pareto_order_independent;
    ] )
