(* Tests for the extension features: the assembler, binary translation,
   the complexity model, BEU clustering, the OoO-in-BEU option, gshare,
   and dynamic braid statistics. *)

module C = Braid_core
module U = Braid_uarch
module Spec = Braid_workload.Spec

let i64 = Alcotest.testable (Fmt.of_to_string Int64.to_string) Int64.equal

(* --- Asm --- *)

let test_asm_simple_program () =
  let text =
    {|
; sum the numbers 1..5
B0:
  lda #0, r1
  lda #1, r2
B1:
  addq r1, r2, r1
  addqi r2, #1, r2
  cmplei r2, #5, r3
  bne r3, B1
B2:
  lda #4096, r4
  stq r1, 0(r4) @0
  halt
|}
  in
  let p = Asm.parse text in
  Alcotest.(check int) "three blocks" 3 (Program.num_blocks p);
  let out = Emulator.run p in
  Alcotest.(check i64) "1+2+3+4+5" 15L (Emulator.read_mem out.Emulator.state 4096)

let test_asm_errors () =
  let bad text =
    try
      ignore (Asm.parse text);
      false
    with Asm.Parse_error _ -> true
  in
  Alcotest.(check bool) "unknown mnemonic" true (bad "B0:\n  frobnicate r1, r2\n  halt");
  Alcotest.(check bool) "bad register" true (bad "B0:\n  addq q1, r2, r3\n  halt");
  Alcotest.(check bool) "instr before block" true (bad "  addq r1, r2, r3");
  Alcotest.(check bool) "out-of-order blocks" true (bad "B1:\n  halt");
  Alcotest.(check bool) "bad label" true (bad "B0:\n  br qq\n");
  Alcotest.(check bool) "empty input" true (bad "")

let test_asm_parse_instr_shapes () =
  let check s expect =
    Alcotest.(check string) s expect (Disasm.instr (Asm.parse_instr s))
  in
  check "addq r1, r2, r3" "  addq r1, r2, r3";
  check "ldq r3, 8(r1)" "  ldq r3, 8(r1)";
  check "stt f2, 0(r4)" "  stt f2, 0(r4)";
  check "cmovne r1, r2, r3" "  cmovne r1, r2, r3";
  check "sqrtt f1, f2" "  sqrtt f1, f2";
  check "bne r1, B7" "  bne r1, B7";
  check "lda #-12, r5" "  lda #-12, r5"

let test_asm_s_bit_and_dup () =
  let ins = Asm.parse_instr "S addq r1, t0, t1 [also r9]" in
  Alcotest.(check bool) "S bit" true ins.Instr.annot.Instr.braid_start;
  (match ins.Instr.annot.Instr.ext_dup with
  | Some r -> Alcotest.(check string) "dup reg" "r9" (Reg.to_string r)
  | None -> Alcotest.fail "expected ext dup");
  match ins.Instr.op with
  | Op.Ibin (Op.Add, d, _, b) ->
      Alcotest.(check string) "internal dst" "t1" (Reg.to_string d);
      Alcotest.(check string) "internal src" "t0" (Reg.to_string b)
  | _ -> Alcotest.fail "wrong op"

let qcheck_asm_roundtrip =
  QCheck.Test.make ~name:"asm round-trips generated binaries" ~count:15
    QCheck.(pair (int_range 0 25) (int_range 0 100))
    (fun (pidx, seed) ->
      let p = List.nth Spec.all pidx in
      let prog, init_mem = Spec.generate p ~seed ~scale:1200 in
      let conv = (C.Transform.conventional prog).C.Extalloc.program in
      let reparsed = Asm.parse (Disasm.program_asm conv) in
      let fp pr =
        Emulator.memory_fingerprint
          (Emulator.run ~max_steps:100_000 ~trace:false ~init_mem pr).Emulator.state
      in
      Int64.equal (fp conv) (fp reparsed))

let test_asm_roundtrip_braided () =
  (* braid annotations (S bits, [also ...]) survive the textual form well
     enough to execute identically *)
  let prog, init_mem = Spec.generate (Spec.find "gcc") ~seed:7 ~scale:1500 in
  let braided = (C.Transform.run prog).C.Transform.program in
  let reparsed = Asm.parse (Disasm.program_asm braided) in
  let fp pr =
    Emulator.memory_fingerprint
      (Emulator.run ~max_steps:100_000 ~trace:false ~init_mem pr).Emulator.state
  in
  Alcotest.(check i64) "braided asm round trip" (fp braided) (fp reparsed)

(* --- binary translation --- *)

let test_run_binary_equivalent () =
  List.iter
    (fun name ->
      let prog, init_mem = Spec.generate (Spec.find name) ~seed:1 ~scale:1500 in
      let conv = (C.Transform.conventional prog).C.Extalloc.program in
      let translated = (C.Transform.run_binary conv).C.Transform.program in
      let fp pr =
        Emulator.memory_fingerprint
          (Emulator.run ~max_steps:100_000 ~trace:false ~init_mem pr).Emulator.state
      in
      Alcotest.(check i64) (name ^ " translation equivalent") (fp conv) (fp translated))
    [ "gcc"; "mcf"; "mgrid"; "twolf"; "lucas" ]

let test_run_binary_rejects_virtual () =
  let prog, _ = Spec.generate (Spec.find "gcc") ~seed:1 ~scale:1000 in
  Alcotest.(check bool) "virtual input rejected" true
    (try
       ignore (C.Transform.run_binary prog);
       false
     with Invalid_argument _ -> true)

let test_run_binary_finds_internals () =
  let prog, _ = Spec.generate (Spec.find "mgrid") ~seed:1 ~scale:1500 in
  let conv = (C.Transform.conventional prog).C.Extalloc.program in
  let translated = (C.Transform.run_binary conv).C.Transform.program in
  let internals = ref 0 in
  Program.iter_instrs
    (fun _ _ ins -> if Instr.writes_internal ins then incr internals)
    translated;
  Alcotest.(check bool) "translation internalises values" true (!internals > 20)

(* --- complexity model --- *)

let test_complexity_ordering () =
  let total cfg = (U.Complexity.of_config cfg).U.Complexity.total in
  let ooo = total U.Config.ooo_8wide in
  let braid = total U.Config.braid_8wide in
  let io = total U.Config.in_order_8wide in
  Alcotest.(check bool) "braid far below ooo" true (braid < ooo /. 10.0);
  Alcotest.(check bool) "braid at most in-order-ish" true (braid < io);
  Alcotest.(check bool) "ooo wakeup broadcast largest" true
    ((U.Complexity.of_config U.Config.ooo_8wide).U.Complexity.wakeup_broadcast_per_result
    > (U.Complexity.of_config U.Config.braid_8wide).U.Complexity.wakeup_broadcast_per_result)

let test_complexity_rf_quadratic_in_ports () =
  let base = { U.Config.ooo_8wide with U.Config.ext_regs = 64 } in
  let doubled =
    { base with U.Config.rf_read_ports = 32; rf_write_ports = 16 }
  in
  let a = (U.Complexity.of_config base).U.Complexity.rf_area in
  let b = (U.Complexity.of_config doubled).U.Complexity.rf_area in
  Alcotest.(check (float 1e-6)) "doubling ports quadruples RF area" 4.0 (b /. a)

let test_complexity_describe () =
  let s = U.Complexity.describe U.Config.braid_8wide in
  Alcotest.(check bool) "describe mentions config" true
    (Astring_contains.contains s "braid-8")

let activity_run name cfg =
  let prog, init_mem = Spec.generate (Spec.find name) ~seed:1 ~scale:1500 in
  let binary =
    match cfg.U.Config.kind with
    | U.Config.Braid_exec | U.Config.Cgooo ->
        (C.Transform.run prog).C.Transform.program
    | _ -> (C.Transform.conventional prog).C.Extalloc.program
  in
  let out = Emulator.run ~max_steps:100_000 ~init_mem binary in
  U.Pipeline.run ~warm_data:(List.map fst init_mem) cfg (Option.get out.Emulator.trace)

let test_activity_counts () =
  let ooo = activity_run "mgrid" U.Config.ooo_8wide in
  let braid = activity_run "mgrid" U.Config.braid_8wide in
  let a = ooo.U.Pipeline.activity and b = braid.U.Pipeline.activity in
  Alcotest.(check int) "conventional code has no internal accesses" 0
    (a.U.Machine.int_rf_reads + a.U.Machine.int_rf_writes);
  Alcotest.(check bool) "braid uses the internal files" true
    (b.U.Machine.int_rf_writes > 0);
  Alcotest.(check bool) "braid makes fewer external reads" true
    (b.U.Machine.ext_rf_reads < a.U.Machine.ext_rf_reads);
  Alcotest.(check bool) "braid puts fewer values on the bypass" true
    (b.U.Machine.bypass_values < a.U.Machine.bypass_values)

(* --- braid-core variants --- *)

let test_clustering_costs () =
  let flat = activity_run "swim" U.Config.braid_8wide in
  let clustered =
    activity_run "swim"
      { U.Config.braid_8wide with
        U.Config.name = "braid-clu";
        beu_cluster_size = 2;
        inter_cluster_latency = 6 }
  in
  Alcotest.(check bool) "clustering with slow links costs cycles" true
    (clustered.U.Pipeline.cycles >= flat.U.Pipeline.cycles)

let test_beu_ooo_never_hurts () =
  List.iter
    (fun name ->
      let fifo = activity_run name U.Config.braid_8wide in
      let oooed =
        activity_run name
          { U.Config.braid_8wide with U.Config.name = "braid-oooed"; beu_out_of_order = true }
      in
      Alcotest.(check bool) (name ^ " ooo-in-beu >= fifo window") true
        (oooed.U.Pipeline.cycles <= fifo.U.Pipeline.cycles))
    [ "gcc"; "swim" ]

let test_gshare_works () =
  let r =
    activity_run "gcc"
      { U.Config.braid_8wide with U.Config.name = "braid-gsh"; predictor = U.Config.Gshare }
  in
  Alcotest.(check bool) "completes with gshare" true (r.U.Pipeline.cycles > 0);
  Alcotest.(check bool) "mispredicts counted" true (r.U.Pipeline.branch_mispredicts > 0)

let test_gshare_learns_bias () =
  let cfg = { U.Config.braid_8wide with U.Config.predictor = U.Config.Gshare } in
  let pred = U.Predictor.create cfg in
  for _ = 1 to 300 do
    ignore (U.Predictor.predict_and_train pred ~pc:0x40 ~taken:true)
  done;
  Alcotest.(check bool) "gshare learns constant branch" true
    (U.Predictor.accuracy pred > 0.95)

(* --- checkpoints and stall diagnostics --- *)

let test_checkpoint_limit_costs () =
  let unlimited = activity_run "gcc" U.Config.ooo_8wide in
  let one =
    activity_run "gcc"
      { U.Config.ooo_8wide with U.Config.name = "ooo-ckpt1"; max_unresolved_branches = 1 }
  in
  let eight =
    activity_run "gcc"
      { U.Config.ooo_8wide with U.Config.name = "ooo-ckpt8"; max_unresolved_branches = 8 }
  in
  Alcotest.(check bool) "1 checkpoint much slower" true
    (one.U.Pipeline.cycles > unlimited.U.Pipeline.cycles);
  Alcotest.(check bool) "monotone in checkpoints" true
    (eight.U.Pipeline.cycles <= one.U.Pipeline.cycles);
  Alcotest.(check bool) "8 checkpoints near unlimited" true
    (float_of_int eight.U.Pipeline.cycles
    < 1.15 *. float_of_int unlimited.U.Pipeline.cycles)

let test_stall_diagnostics () =
  let r = activity_run "parser" U.Config.braid_8wide in
  let s = r.U.Pipeline.stalls in
  Alcotest.(check bool) "redirect stalls bounded by cycles" true
    (s.U.Pipeline.fetch_redirect <= r.U.Pipeline.cycles);
  Alcotest.(check bool) "mispredict-heavy code shows redirect stalls" true
    (s.U.Pipeline.fetch_redirect > 0);
  Alcotest.(check bool) "occupancy positive" true (r.U.Pipeline.avg_occupancy > 0.0);
  Alcotest.(check bool) "occupancy bounded by core capacity" true
    (r.U.Pipeline.avg_occupancy
    <= float_of_int
         (U.Config.braid_8wide.U.Config.clusters
          * U.Config.braid_8wide.U.Config.cluster_entries
         + 64))

(* --- front-end fidelity options --- *)

let test_wrong_path_pollutes () =
  let base = activity_run "parser" U.Config.braid_8wide in
  let wp =
    activity_run "parser"
      { U.Config.braid_8wide with U.Config.name = "braid-wp"; model_wrong_path_fetch = true }
  in
  (* wrong-path fetch can only add I-cache traffic and cycles *)
  Alcotest.(check bool) "no speedup from pollution" true
    (wp.U.Pipeline.cycles >= base.U.Pipeline.cycles);
  Alcotest.(check bool) "results still complete" true
    (wp.U.Pipeline.instructions = base.U.Pipeline.instructions)

let test_btb_misses_cost () =
  let base = activity_run "gcc" U.Config.ooo_8wide in
  let tiny =
    activity_run "gcc"
      { U.Config.ooo_8wide with U.Config.name = "ooo-btb2"; btb_entries = 2 }
  in
  Alcotest.(check bool) "a 2-entry btb costs cycles" true
    (tiny.U.Pipeline.cycles >= base.U.Pipeline.cycles)

(* --- dynamic braid stats --- *)

let test_dynamic_stats () =
  let ctx = Braid_sim.Suite.create_ctx () in
  let p = Braid_sim.Suite.prepare ctx ~scale:1500 (Spec.find "gcc") in
  let d = C.Braid_stats.dynamic_of_trace (p.Braid_sim.Suite.braid_trace ()) in
  Alcotest.(check bool) "instances positive" true (d.C.Braid_stats.instances > 0);
  Alcotest.(check bool) "size >= 1" true (d.C.Braid_stats.dyn_avg_size >= 1.0);
  Alcotest.(check bool) "multi size >= 2" true (d.C.Braid_stats.dyn_avg_size_multi >= 2.0);
  Alcotest.(check bool) "single fraction in [0,1]" true
    (d.C.Braid_stats.dyn_single_fraction >= 0.0 && d.C.Braid_stats.dyn_single_fraction <= 1.0);
  (* every dynamic instance's instructions sum to the trace length *)
  let total =
    float_of_int d.C.Braid_stats.instances *. d.C.Braid_stats.dyn_avg_size
  in
  Alcotest.(check bool) "sizes sum to trace length" true
    (abs_float (total -. float_of_int (Trace.length (p.Braid_sim.Suite.braid_trace ()))) < 1.0)

let suite =
  ( "extensions",
    [
      Alcotest.test_case "asm simple program" `Quick test_asm_simple_program;
      Alcotest.test_case "asm errors" `Quick test_asm_errors;
      Alcotest.test_case "asm instr shapes" `Quick test_asm_parse_instr_shapes;
      Alcotest.test_case "asm S bit and dup" `Quick test_asm_s_bit_and_dup;
      QCheck_alcotest.to_alcotest qcheck_asm_roundtrip;
      Alcotest.test_case "asm braided round trip" `Quick test_asm_roundtrip_braided;
      Alcotest.test_case "binary translation equivalent" `Quick test_run_binary_equivalent;
      Alcotest.test_case "binary translation rejects virtual" `Quick test_run_binary_rejects_virtual;
      Alcotest.test_case "binary translation internalises" `Quick test_run_binary_finds_internals;
      Alcotest.test_case "complexity ordering" `Quick test_complexity_ordering;
      Alcotest.test_case "rf area quadratic in ports" `Quick test_complexity_rf_quadratic_in_ports;
      Alcotest.test_case "complexity describe" `Quick test_complexity_describe;
      Alcotest.test_case "activity counters" `Quick test_activity_counts;
      Alcotest.test_case "clustering costs" `Quick test_clustering_costs;
      Alcotest.test_case "ooo-in-beu never hurts" `Quick test_beu_ooo_never_hurts;
      Alcotest.test_case "gshare works" `Quick test_gshare_works;
      Alcotest.test_case "gshare learns" `Quick test_gshare_learns_bias;
      Alcotest.test_case "wrong-path pollution" `Quick test_wrong_path_pollutes;
      Alcotest.test_case "btb misses cost" `Quick test_btb_misses_cost;
      Alcotest.test_case "checkpoint limit" `Quick test_checkpoint_limit_costs;
      Alcotest.test_case "stall diagnostics" `Quick test_stall_diagnostics;
      Alcotest.test_case "dynamic braid stats" `Quick test_dynamic_stats;
    ] )
