(* Golden-number regression: exact instruction counts, cycle counts, and
   IPC for a cross-section of benchmarks on all three core models, pinned
   to the timing model's established behaviour. The hot-path work in this
   repo (calendar queues, flat-array machine state, static disambiguation
   tables) must never move a single cycle: any diff here is a modeling
   change, not an optimisation, and needs its own justification. *)

module Suite = Braid_sim.Suite
module U = Braid_uarch

type core = In_order | Ooo | Braid

let core_name = function In_order -> "in-order" | Ooo -> "ooo" | Braid -> "braid"

(* (bench, core, instructions, cycles) at scale 2000, seed defaults *)
let golden =
  [
    ("gzip", In_order, 3452, 4381);
    ("gzip", Ooo, 3452, 2593);
    ("gzip", Braid, 3452, 2532);
    ("mcf", In_order, 1620, 3304);
    ("mcf", Ooo, 1620, 1573);
    ("mcf", Braid, 1620, 1578);
    ("crafty", In_order, 4254, 4506);
    ("crafty", Ooo, 4254, 2570);
    ("crafty", Braid, 4254, 2561);
    ("swim", In_order, 8984, 15716);
    ("swim", Ooo, 8984, 1585);
    ("swim", Braid, 8984, 1998);
    ("mgrid", In_order, 4574, 7433);
    ("mgrid", Ooo, 4574, 1093);
    ("mgrid", Braid, 4574, 1560);
  ]

let ctx = lazy (Suite.create_ctx ())

let check_one bench core instrs cycles () =
  let ctx = Lazy.force ctx in
  let p = Suite.prepare ctx ~scale:2000 (Braid_workload.Spec.find bench) in
  let r =
    match core with
    | In_order -> Suite.run_conv ctx p U.Config.in_order_8wide
    | Ooo -> Suite.run_conv ctx p U.Config.ooo_8wide
    | Braid -> Suite.run_braid ctx p U.Config.braid_8wide
  in
  Alcotest.(check int) "instructions" instrs r.U.Pipeline.instructions;
  Alcotest.(check int) "cycles" cycles r.U.Pipeline.cycles;
  Alcotest.(check (float 1e-12))
    "ipc"
    (float_of_int instrs /. float_of_int cycles)
    r.U.Pipeline.ipc

let suite =
  ( "golden",
    List.map
      (fun (bench, core, instrs, cycles) ->
        Alcotest.test_case
          (Printf.sprintf "%s/%s" bench (core_name core))
          `Slow
          (check_one bench core instrs cycles))
      golden )
