(* Golden-number regression: exact instruction counts, cycle counts, and
   IPC for the full 26-benchmark suite on all three core models, pinned
   to the timing model's established behaviour. The hot-path work in this
   repo (calendar queues, flat-array machine state, static disambiguation
   tables) must never move a single cycle: any diff here is a modeling
   change, not an optimisation, and needs its own justification. *)

module Suite = Braid_sim.Suite
module U = Braid_uarch

type core = In_order | Ooo | Braid

let core_name = function In_order -> "in-order" | Ooo -> "ooo" | Braid -> "braid"

(* every benchmark in Spec.all: (bench, core, instructions, cycles) at
   scale 1200, seed defaults — harvested from `braidsim run BENCH --core
   CORE --scale 1200`, which exercises the identical Suite path *)
let golden =
  [
    ("bzip2", In_order, 3418, 4314);
    ("bzip2", Ooo, 3418, 2560);
    ("bzip2", Braid, 3418, 2483);
    ("crafty", In_order, 4254, 4506);
    ("crafty", Ooo, 4254, 2570);
    ("crafty", Braid, 4254, 2561);
    ("eon", In_order, 1885, 2406);
    ("eon", Ooo, 1885, 933);
    ("eon", Braid, 1885, 923);
    ("gap", In_order, 3412, 4536);
    ("gap", Ooo, 3412, 2822);
    ("gap", Braid, 3412, 2757);
    ("gcc", In_order, 2619, 3035);
    ("gcc", Ooo, 2619, 1857);
    ("gcc", Braid, 2619, 1771);
    ("gzip", In_order, 3309, 4177);
    ("gzip", Ooo, 3309, 2568);
    ("gzip", Braid, 3309, 2490);
    ("mcf", In_order, 975, 2023);
    ("mcf", Ooo, 975, 951);
    ("mcf", Braid, 975, 995);
    ("parser", In_order, 2203, 2882);
    ("parser", Ooo, 2203, 1622);
    ("parser", Braid, 2203, 1721);
    ("perlbmk", In_order, 3304, 4326);
    ("perlbmk", Ooo, 3304, 2692);
    ("perlbmk", Braid, 3304, 2614);
    ("twolf", In_order, 2398, 2707);
    ("twolf", Ooo, 2398, 1104);
    ("twolf", Braid, 2398, 1174);
    ("vortex", In_order, 3642, 4668);
    ("vortex", Ooo, 3642, 2513);
    ("vortex", Braid, 3642, 2468);
    ("vpr", In_order, 2334, 2641);
    ("vpr", Ooo, 2334, 1240);
    ("vpr", Braid, 2334, 1304);
    ("ammp", In_order, 4647, 9500);
    ("ammp", Ooo, 4647, 1183);
    ("ammp", Braid, 4647, 1488);
    ("applu", In_order, 4393, 7449);
    ("applu", Ooo, 4393, 1030);
    ("applu", Braid, 4393, 1283);
    ("apsi", In_order, 4721, 7697);
    ("apsi", Ooo, 4721, 1334);
    ("apsi", Braid, 4721, 1537);
    ("art", In_order, 11739, 17395);
    ("art", Ooo, 11739, 2827);
    ("art", Braid, 11739, 3924);
    ("equake", In_order, 3740, 5652);
    ("equake", Ooo, 3740, 901);
    ("equake", Braid, 3740, 1253);
    ("facerec", In_order, 6902, 10182);
    ("facerec", Ooo, 6902, 1976);
    ("facerec", Braid, 6902, 2644);
    ("fma3d", In_order, 4124, 8682);
    ("fma3d", Ooo, 4124, 1085);
    ("fma3d", Braid, 4124, 1510);
    ("galgel", In_order, 3677, 5530);
    ("galgel", Ooo, 3677, 1082);
    ("galgel", Braid, 3677, 1363);
    ("lucas", In_order, 3279, 6083);
    ("lucas", Ooo, 3279, 698);
    ("lucas", Braid, 3279, 1178);
    ("mesa", In_order, 3867, 5284);
    ("mesa", Ooo, 3867, 1163);
    ("mesa", Braid, 3867, 1334);
    ("mgrid", In_order, 4574, 7433);
    ("mgrid", Ooo, 4574, 1093);
    ("mgrid", Braid, 4574, 1560);
    ("sixtrack", In_order, 3376, 6476);
    ("sixtrack", Ooo, 3376, 1020);
    ("sixtrack", Braid, 3376, 1227);
    ("swim", In_order, 8984, 15716);
    ("swim", Ooo, 8984, 1585);
    ("swim", Braid, 8984, 1998);
    ("wupwise", In_order, 4982, 7686);
    ("wupwise", Ooo, 4982, 1464);
    ("wupwise", Braid, 4982, 1844);
  ]

let ctx = lazy (Suite.create_ctx ())

let check_one bench core instrs cycles () =
  let ctx = Lazy.force ctx in
  let p = Suite.prepare ctx ~scale:1200 (Braid_workload.Spec.find bench) in
  let r =
    match core with
    | In_order -> Suite.run_conv ctx p U.Config.in_order_8wide
    | Ooo -> Suite.run_conv ctx p U.Config.ooo_8wide
    | Braid -> Suite.run_braid ctx p U.Config.braid_8wide
  in
  Alcotest.(check int) "instructions" instrs r.U.Pipeline.instructions;
  Alcotest.(check int) "cycles" cycles r.U.Pipeline.cycles;
  Alcotest.(check (float 1e-12))
    "ipc"
    (float_of_int instrs /. float_of_int cycles)
    r.U.Pipeline.ipc

let test_covers_all_benchmarks () =
  (* the table above must track Spec.all: a new benchmark needs golden rows *)
  let named = List.map (fun (b, _, _, _) -> b) golden in
  List.iter
    (fun (s : Braid_workload.Spec.profile) ->
      Alcotest.(check bool)
        (Printf.sprintf "golden rows for %s on all three cores" s.Braid_workload.Spec.name)
        true
        (List.length (List.filter (String.equal s.Braid_workload.Spec.name) named) = 3))
    Braid_workload.Spec.all

let suite =
  ( "golden",
    Alcotest.test_case "covers every benchmark" `Quick test_covers_all_benchmarks
    :: List.map
         (fun (bench, core, instrs, cycles) ->
           Alcotest.test_case
             (Printf.sprintf "%s/%s" bench (core_name core))
             `Slow
             (check_one bench core instrs cycles))
         golden )
