(* Golden-number regression: exact instruction counts, cycle counts, and
   IPC for the full 26-benchmark suite on all four simulated core models,
   pinned to the timing model's established behaviour. The hot-path work
   in this repo (calendar queues, flat-array machine state, static
   disambiguation tables) must never move a single cycle: any diff here is
   a modeling change, not an optimisation, and needs its own
   justification. *)

module Suite = Braid_sim.Suite
module U = Braid_uarch

type core = In_order | Ooo | Braid | Cgooo

let core_name = function
  | In_order -> "in-order"
  | Ooo -> "ooo"
  | Braid -> "braid"
  | Cgooo -> "cgooo"

(* every benchmark in Spec.all: (bench, core, instructions, cycles) at
   scale 1200, seed defaults — harvested from `braidsim run BENCH --core
   CORE --scale 1200`, which exercises the identical Suite path *)
let golden =
  [
    ("bzip2", In_order, 3418, 4314);
    ("bzip2", Ooo, 3418, 2560);
    ("bzip2", Braid, 3418, 2483);
    ("bzip2", Cgooo, 3418, 3805);
    ("crafty", In_order, 4254, 4506);
    ("crafty", Ooo, 4254, 2570);
    ("crafty", Braid, 4254, 2561);
    ("crafty", Cgooo, 4254, 3952);
    ("eon", In_order, 1885, 2406);
    ("eon", Ooo, 1885, 933);
    ("eon", Braid, 1885, 923);
    ("eon", Cgooo, 1885, 1996);
    ("gap", In_order, 3412, 4536);
    ("gap", Ooo, 3412, 2822);
    ("gap", Braid, 3412, 2757);
    ("gap", Cgooo, 3412, 4084);
    ("gcc", In_order, 2619, 3035);
    ("gcc", Ooo, 2619, 1857);
    ("gcc", Braid, 2619, 1771);
    ("gcc", Cgooo, 2619, 2704);
    ("gzip", In_order, 3309, 4177);
    ("gzip", Ooo, 3309, 2568);
    ("gzip", Braid, 3309, 2490);
    ("gzip", Cgooo, 3309, 3697);
    ("mcf", In_order, 975, 2023);
    ("mcf", Ooo, 975, 951);
    ("mcf", Braid, 975, 995);
    ("mcf", Cgooo, 975, 1442);
    ("parser", In_order, 2203, 2882);
    ("parser", Ooo, 2203, 1622);
    ("parser", Braid, 2203, 1721);
    ("parser", Cgooo, 2203, 2173);
    ("perlbmk", In_order, 3304, 4326);
    ("perlbmk", Ooo, 3304, 2692);
    ("perlbmk", Braid, 3304, 2614);
    ("perlbmk", Cgooo, 3304, 3865);
    ("twolf", In_order, 2398, 2707);
    ("twolf", Ooo, 2398, 1104);
    ("twolf", Braid, 2398, 1174);
    ("twolf", Cgooo, 2398, 2221);
    ("vortex", In_order, 3642, 4668);
    ("vortex", Ooo, 3642, 2513);
    ("vortex", Braid, 3642, 2468);
    ("vortex", Cgooo, 3642, 4143);
    ("vpr", In_order, 2334, 2641);
    ("vpr", Ooo, 2334, 1240);
    ("vpr", Braid, 2334, 1304);
    ("vpr", Cgooo, 2334, 1911);
    ("ammp", In_order, 4647, 9500);
    ("ammp", Ooo, 4647, 1183);
    ("ammp", Braid, 4647, 1488);
    ("ammp", Cgooo, 4647, 9047);
    ("applu", In_order, 4393, 7449);
    ("applu", Ooo, 4393, 1030);
    ("applu", Braid, 4393, 1283);
    ("applu", Cgooo, 4393, 7271);
    ("apsi", In_order, 4721, 7697);
    ("apsi", Ooo, 4721, 1334);
    ("apsi", Braid, 4721, 1537);
    ("apsi", Cgooo, 4721, 7314);
    ("art", In_order, 11739, 17395);
    ("art", Ooo, 11739, 2827);
    ("art", Braid, 11739, 3924);
    ("art", Cgooo, 11739, 16729);
    ("equake", In_order, 3740, 5652);
    ("equake", Ooo, 3740, 901);
    ("equake", Braid, 3740, 1253);
    ("equake", Cgooo, 3740, 5433);
    ("facerec", In_order, 6902, 10182);
    ("facerec", Ooo, 6902, 1976);
    ("facerec", Braid, 6902, 2644);
    ("facerec", Cgooo, 6902, 9561);
    ("fma3d", In_order, 4124, 8682);
    ("fma3d", Ooo, 4124, 1085);
    ("fma3d", Braid, 4124, 1510);
    ("fma3d", Cgooo, 4124, 8141);
    ("galgel", In_order, 3677, 5530);
    ("galgel", Ooo, 3677, 1082);
    ("galgel", Braid, 3677, 1363);
    ("galgel", Cgooo, 3677, 5230);
    ("lucas", In_order, 3279, 6083);
    ("lucas", Ooo, 3279, 698);
    ("lucas", Braid, 3279, 1178);
    ("lucas", Cgooo, 3279, 6034);
    ("mesa", In_order, 3867, 5284);
    ("mesa", Ooo, 3867, 1163);
    ("mesa", Braid, 3867, 1334);
    ("mesa", Cgooo, 3867, 4744);
    ("mgrid", In_order, 4574, 7433);
    ("mgrid", Ooo, 4574, 1093);
    ("mgrid", Braid, 4574, 1560);
    ("mgrid", Cgooo, 4574, 7250);
    ("sixtrack", In_order, 3376, 6476);
    ("sixtrack", Ooo, 3376, 1020);
    ("sixtrack", Braid, 3376, 1227);
    ("sixtrack", Cgooo, 3376, 6046);
    ("swim", In_order, 8984, 15716);
    ("swim", Ooo, 8984, 1585);
    ("swim", Braid, 8984, 1998);
    ("swim", Cgooo, 8984, 15341);
    ("wupwise", In_order, 4982, 7686);
    ("wupwise", Ooo, 4982, 1464);
    ("wupwise", Braid, 4982, 1844);
    ("wupwise", Cgooo, 4982, 7193);
  ]

let ctx = lazy (Suite.create_ctx ())

let check_one bench core instrs cycles () =
  let ctx = Lazy.force ctx in
  let p = Suite.prepare ctx ~scale:1200 (Braid_workload.Spec.find bench) in
  let r =
    match core with
    | In_order -> Suite.run_conv ctx p U.Config.in_order_8wide
    | Ooo -> Suite.run_conv ctx p U.Config.ooo_8wide
    | Braid -> Suite.run_braid ctx p U.Config.braid_8wide
    | Cgooo -> Suite.run_braid ctx p U.Config.cgooo_8wide
  in
  Alcotest.(check int) "instructions" instrs r.U.Pipeline.instructions;
  Alcotest.(check int) "cycles" cycles r.U.Pipeline.cycles;
  Alcotest.(check (float 1e-12))
    "ipc"
    (float_of_int instrs /. float_of_int cycles)
    r.U.Pipeline.ipc

let test_covers_all_benchmarks () =
  (* the table above must track Spec.all: a new benchmark needs golden rows *)
  let named = List.map (fun (b, _, _, _) -> b) golden in
  List.iter
    (fun (s : Braid_workload.Spec.profile) ->
      Alcotest.(check bool)
        (Printf.sprintf "golden rows for %s on all four cores" s.Braid_workload.Spec.name)
        true
        (List.length (List.filter (String.equal s.Braid_workload.Spec.name) named) = 4))
    Braid_workload.Spec.all

let suite =
  ( "golden",
    Alcotest.test_case "covers every benchmark" `Quick test_covers_all_benchmarks
    :: List.map
         (fun (bench, core, instrs, cycles) ->
           Alcotest.test_case
             (Printf.sprintf "%s/%s" bench (core_name core))
             `Slow
             (check_one bench core instrs cycles))
         golden )
