(* Tests for registers, operations, instructions and the Fig-3 encoding. *)

let r0 = Reg.ext Reg.Cint 0
let r1 = Reg.ext Reg.Cint 1
let r2 = Reg.ext Reg.Cint 2
let f0 = Reg.ext Reg.Cfp 0
let t0 = Reg.intern 0
let t1 = Reg.intern 1

(* --- Reg --- *)

let test_reg_zero () =
  Alcotest.(check bool) "zero is zero" true (Reg.is_zero Reg.zero);
  Alcotest.(check bool) "r0 is not zero" false (Reg.is_zero r0);
  Alcotest.(check string) "zero prints" "zero" (Reg.to_string Reg.zero)

let test_reg_ext_id () =
  Alcotest.(check int) "int id" 5 (Reg.ext_id (Reg.ext Reg.Cint 5));
  Alcotest.(check int) "fp id" 37 (Reg.ext_id (Reg.ext Reg.Cfp 5));
  (* bijective over the whole space *)
  let seen = Hashtbl.create 64 in
  for i = 0 to Reg.num_ext_per_class - 1 do
    List.iter
      (fun cls ->
        let id = Reg.ext_id (Reg.ext cls i) in
        Alcotest.(check bool) "id in range" true (id >= 0 && id < Reg.num_ext_ids);
        Alcotest.(check bool) "id unique" false (Hashtbl.mem seen id);
        Hashtbl.add seen id ())
      [ Reg.Cint; Reg.Cfp ]
  done

let test_reg_bounds () =
  Alcotest.check_raises "ext oob" (Invalid_argument "Reg.ext: index out of range")
    (fun () -> ignore (Reg.ext Reg.Cint 32));
  Alcotest.check_raises "intern oob"
    (Invalid_argument "Reg.intern: index out of range") (fun () ->
      ignore (Reg.intern 8));
  Alcotest.check_raises "ext_id of virt"
    (Invalid_argument "Reg.ext_id: not an external register") (fun () ->
      ignore (Reg.ext_id (Reg.virt Reg.Cint 0)))

let test_reg_to_string () =
  Alcotest.(check string) "int reg" "r3" (Reg.to_string (Reg.ext Reg.Cint 3));
  Alcotest.(check string) "fp reg" "f3" (Reg.to_string (Reg.ext Reg.Cfp 3));
  Alcotest.(check string) "intern" "t2" (Reg.to_string (Reg.intern 2));
  Alcotest.(check string) "virt" "v9" (Reg.to_string (Reg.virt Reg.Cint 9))

(* --- Op semantics --- *)

let i64 = Alcotest.testable (Fmt.of_to_string Int64.to_string) Int64.equal

let test_eval_ibin () =
  Alcotest.(check i64) "add" 7L (Op.eval_ibin Op.Add 3L 4L);
  Alcotest.(check i64) "sub" (-1L) (Op.eval_ibin Op.Sub 3L 4L);
  Alcotest.(check i64) "mul" 12L (Op.eval_ibin Op.Mul 3L 4L);
  Alcotest.(check i64) "div" (-3L) (Op.eval_ibin Op.Div (-7L) 2L);
  Alcotest.(check i64) "div by zero" (-1L) (Op.eval_ibin Op.Div 7L 0L);
  Alcotest.(check i64) "rem" (-1L) (Op.eval_ibin Op.Rem (-7L) 2L);
  Alcotest.(check i64) "rem by zero" 7L (Op.eval_ibin Op.Rem 7L 0L);
  Alcotest.(check i64) "and" 2L (Op.eval_ibin Op.And 6L 3L);
  Alcotest.(check i64) "or" 7L (Op.eval_ibin Op.Or 6L 3L);
  Alcotest.(check i64) "xor" 5L (Op.eval_ibin Op.Xor 6L 3L);
  Alcotest.(check i64) "andnot" 4L (Op.eval_ibin Op.Andnot 6L 3L);
  Alcotest.(check i64) "shl" 24L (Op.eval_ibin Op.Shl 3L 3L);
  Alcotest.(check i64) "shr" 3L (Op.eval_ibin Op.Shr 24L 3L);
  Alcotest.(check i64) "shr logical" 1L (Op.eval_ibin Op.Shr Int64.min_int 63L);
  Alcotest.(check i64) "cmpeq true" 1L (Op.eval_ibin Op.Cmpeq 5L 5L);
  Alcotest.(check i64) "cmpeq false" 0L (Op.eval_ibin Op.Cmpeq 5L 6L);
  Alcotest.(check i64) "cmplt" 1L (Op.eval_ibin Op.Cmplt (-1L) 0L);
  Alcotest.(check i64) "cmple" 1L (Op.eval_ibin Op.Cmple 5L 5L)

let test_eval_fbin () =
  Alcotest.(check (option (float 1e-9))) "fadd" (Some 3.5) (Op.eval_fbin Op.Fadd 1.5 2.0);
  Alcotest.(check (option (float 1e-9))) "fdiv" (Some 2.0) (Op.eval_fbin Op.Fdiv 4.0 2.0);
  Alcotest.(check (option (float 1e-9))) "fdiv by zero faults" None
    (Op.eval_fbin Op.Fdiv 4.0 0.0);
  Alcotest.(check (option (float 1e-9))) "fcmplt" (Some 1.0) (Op.eval_fbin Op.Fcmplt 1.0 2.0)

let test_eval_cond () =
  Alcotest.(check bool) "eq" true (Op.eval_cond Op.Eq 0L);
  Alcotest.(check bool) "ne" true (Op.eval_cond Op.Ne 5L);
  Alcotest.(check bool) "lt" true (Op.eval_cond Op.Lt (-1L));
  Alcotest.(check bool) "ge" true (Op.eval_cond Op.Ge 0L);
  Alcotest.(check bool) "le" false (Op.eval_cond Op.Le 1L);
  Alcotest.(check bool) "gt" false (Op.eval_cond Op.Gt 0L)

let test_defs_uses () =
  let reg = Alcotest.testable Reg.pp Reg.equal in
  Alcotest.(check (list reg)) "ibin defs" [ r0 ] (Op.defs (Op.Ibin (Op.Add, r0, r1, r2)));
  Alcotest.(check (list reg)) "ibin uses" [ r1; r2 ] (Op.uses (Op.Ibin (Op.Add, r0, r1, r2)));
  Alcotest.(check (list reg)) "store defs nothing" [] (Op.defs (Op.Store (r1, r2, 0, 0)));
  Alcotest.(check (list reg)) "store uses" [ r1; r2 ] (Op.uses (Op.Store (r1, r2, 0, 0)));
  (* the conditional move reads its own destination *)
  Alcotest.(check (list reg)) "cmov uses include dst" [ r1; r2; r0 ]
    (Op.uses (Op.Cmov (Op.Ne, r0, r1, r2)));
  Alcotest.(check (list reg)) "branch uses" [ r1 ] (Op.uses (Op.Branch (Op.Eq, r1, 0)));
  Alcotest.(check (list reg)) "halt nothing" [] (Op.uses Op.Halt)

let test_latency () =
  Alcotest.(check int) "alu" 1 (Op.latency (Op.Ibin (Op.Add, r0, r1, r2)));
  Alcotest.(check int) "mul" 3 (Op.latency (Op.Ibin (Op.Mul, r0, r1, r2)));
  Alcotest.(check int) "fdiv" 12 (Op.latency (Op.Fbin (Op.Fdiv, f0, f0, f0)));
  Alcotest.(check bool) "all positive" true (Op.latency Op.Halt > 0)

let test_map_regs () =
  let swap r = if Reg.equal r r1 then r2 else r in
  let op = Op.map_regs swap (Op.Ibin (Op.Add, r0, r1, r1)) in
  match op with
  | Op.Ibin (Op.Add, d, a, b) ->
      Alcotest.(check bool) "dst kept" true (Reg.equal d r0);
      Alcotest.(check bool) "src swapped" true (Reg.equal a r2 && Reg.equal b r2)
  | _ -> Alcotest.fail "wrong shape"

(* --- Instr --- *)

let test_instr_flags () =
  let load_int = Instr.make (Op.Load (t0, r1, 0, 0)) in
  Alcotest.(check bool) "writes internal" true (Instr.writes_internal load_int);
  Alcotest.(check bool) "no external write" false (Instr.writes_external load_int);
  let dup = Instr.with_ext_dup load_int r2 in
  Alcotest.(check bool) "dup writes external" true (Instr.writes_external dup);
  Alcotest.(check int) "dup has two defs" 2 (List.length (Instr.defs dup));
  Alcotest.(check int) "ext src reads" 1 (Instr.reads_external_count load_int);
  let zero_read = Instr.make (Op.Ibin (Op.Add, r0, Reg.zero, r1)) in
  Alcotest.(check int) "zero reg not an ext read" 1 (Instr.reads_external_count zero_read)

let test_instr_ext_dup_rejects_internal () =
  let ins = Instr.make (Op.Ibin (Op.Add, t0, r1, r2)) in
  Alcotest.check_raises "no internal dup"
    (Invalid_argument "Instr.with_ext_dup: internal register") (fun () ->
      ignore (Instr.with_ext_dup ins t1))

let test_instr_braid_annot () =
  let ins = Instr.with_braid (Instr.make Op.Nop) ~id:7 ~start:true in
  Alcotest.(check int) "braid id" 7 ins.Instr.annot.Instr.braid_id;
  Alcotest.(check bool) "start bit" true ins.Instr.annot.Instr.braid_start

(* --- Encode: round trip --- *)

let arb_instr =
  let open QCheck.Gen in
  let reg_ext = map2 (fun cls i -> Reg.ext (if cls then Reg.Cfp else Reg.Cint) i) bool (int_range 0 31) in
  let reg_src = oneof [ reg_ext; map Reg.intern (int_range 0 7) ] in
  let ibin = oneofl [ Op.Add; Op.Sub; Op.Mul; Op.Div; Op.Rem; Op.And; Op.Or; Op.Xor; Op.Andnot; Op.Shl; Op.Shr; Op.Cmpeq; Op.Cmplt; Op.Cmple ] in
  let fbin = oneofl [ Op.Fadd; Op.Fsub; Op.Fmul; Op.Fdiv; Op.Fcmplt ] in
  let funary = oneofl [ Op.Fneg; Op.Fsqrt; Op.Cvt_if ] in
  let cond = oneofl [ Op.Eq; Op.Ne; Op.Lt; Op.Ge; Op.Le; Op.Gt ] in
  let imm = int_range (-1000000) 1000000 in
  let label = int_range 0 1000 in
  let dest_int = map Reg.intern (int_range 0 7) in
  let dst = oneof [ reg_ext; dest_int ] in
  let op =
    oneof
      [
        return Op.Nop;
        map2 (fun (o, d) (a, b) -> Op.Ibin (o, d, a, b)) (pair ibin dst) (pair reg_src reg_src);
        map2 (fun (o, d) (a, i) -> Op.Ibini (o, d, a, i)) (pair ibin dst) (pair reg_src imm);
        map2 (fun d v -> Op.Movi (d, Int64.of_int v)) dst imm;
        map2 (fun (o, d) (a, b) -> Op.Fbin (o, d, a, b)) (pair fbin dst) (pair reg_src reg_src);
        map2 (fun (o, d) a -> Op.Funary (o, d, a)) (pair funary dst) reg_src;
        map2 (fun (c, d) (t, v) -> Op.Cmov (c, d, t, v)) (pair cond reg_ext) (pair reg_src reg_src);
        map2 (fun (d, b) off -> Op.Load (d, b, off, Op.region_unknown)) (pair dst reg_src) imm;
        map2 (fun (s, b) off -> Op.Store (s, b, off, Op.region_unknown)) (pair reg_src reg_src) imm;
        map2 (fun (c, r) l -> Op.Branch (c, r, l)) (pair cond reg_src) label;
        map (fun l -> Op.Jump l) label;
        return Op.Halt;
      ]
  in
  let annotate (op, start) =
    let ins = Instr.make op in
    let ins = { ins with Instr.annot = { ins.Instr.annot with Instr.braid_start = start } } in
    (* when the destination is internal, optionally add an external dup *)
    match Op.defs op with
    | [ d ] when d.Reg.space = Reg.Intern ->
        Instr.with_ext_dup ins (Reg.ext d.Reg.cls 5)
    | _ -> ins
  in
  QCheck.make
    ~print:(fun i -> Format.asprintf "%a" Instr.pp i)
    (map annotate (pair op bool))

let qcheck_encode_roundtrip =
  QCheck.Test.make ~name:"encode/decode round trip" ~count:2000 arb_instr
    (fun ins ->
      let decoded = Encode.decode (Encode.encode ins) in
      (* regions and braid ids do not travel through the binary form *)
      let strip (i : Instr.t) =
        let op =
          match i.Instr.op with
          | Op.Load (d, b, off, _) -> Op.Load (d, b, off, Op.region_unknown)
          | Op.Store (s, b, off, _) -> Op.Store (s, b, off, Op.region_unknown)
          | op -> op
        in
        { Instr.op; annot = { i.Instr.annot with Instr.braid_id = -1 } }
      in
      strip ins = strip decoded)

let qcheck_disasm_roundtrip =
  QCheck.Test.make ~name:"disasm/parse round trip" ~count:2000 arb_instr
    (fun ins ->
      let parsed = Asm.parse_instr (Disasm.instr ins) in
      (* regions and braid ids do not travel through the textual form *)
      let strip (i : Instr.t) =
        let op =
          match i.Instr.op with
          | Op.Load (d, b, off, _) -> Op.Load (d, b, off, Op.region_unknown)
          | Op.Store (s, b, off, _) -> Op.Store (s, b, off, Op.region_unknown)
          | op -> op
        in
        { Instr.op; annot = { i.Instr.annot with Instr.braid_id = -1 } }
      in
      strip ins = strip parsed)

let test_encode_virtual_rejected () =
  let ins = Instr.make (Op.Ibin (Op.Add, Reg.virt Reg.Cint 0, r1, r2)) in
  Alcotest.(check bool) "raises Unencodable" true
    (try
       ignore (Encode.encode ins);
       false
     with Encode.Unencodable _ -> true)

let test_encode_imm_overflow () =
  let ins = Instr.make (Op.Movi (r0, 0x7FFF_FFFF_FFFFL)) in
  Alcotest.(check bool) "raises Unencodable" true
    (try
       ignore (Encode.encode ins);
       false
     with Encode.Unencodable _ -> true)

let test_encode_s_bit () =
  let ins = Instr.with_braid (Instr.make Op.Nop) ~id:3 ~start:true in
  let w = Encode.encode ins in
  Alcotest.(check bool) "S bit is bit 63" true
    (Int64.logand (Int64.shift_right_logical w 63) 1L = 1L);
  let decoded = Encode.decode w in
  Alcotest.(check bool) "S bit decoded" true decoded.Instr.annot.Instr.braid_start

let suite =
  ( "isa",
    [
      Alcotest.test_case "reg zero" `Quick test_reg_zero;
      Alcotest.test_case "reg ext ids" `Quick test_reg_ext_id;
      Alcotest.test_case "reg bounds" `Quick test_reg_bounds;
      Alcotest.test_case "reg to_string" `Quick test_reg_to_string;
      Alcotest.test_case "eval ibin" `Quick test_eval_ibin;
      Alcotest.test_case "eval fbin" `Quick test_eval_fbin;
      Alcotest.test_case "eval cond" `Quick test_eval_cond;
      Alcotest.test_case "defs/uses" `Quick test_defs_uses;
      Alcotest.test_case "latency" `Quick test_latency;
      Alcotest.test_case "map_regs" `Quick test_map_regs;
      Alcotest.test_case "instr flags" `Quick test_instr_flags;
      Alcotest.test_case "ext_dup rejects internal" `Quick test_instr_ext_dup_rejects_internal;
      Alcotest.test_case "braid annot" `Quick test_instr_braid_annot;
      QCheck_alcotest.to_alcotest qcheck_encode_roundtrip;
      QCheck_alcotest.to_alcotest qcheck_disasm_roundtrip;
      Alcotest.test_case "encode rejects virtual" `Quick test_encode_virtual_rejected;
      Alcotest.test_case "encode imm overflow" `Quick test_encode_imm_overflow;
      Alcotest.test_case "encode S bit" `Quick test_encode_s_bit;
    ] )
