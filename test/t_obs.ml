(* Observability subsystem tests: counter accumulation through a real
   pipeline run, histogram bucketing, the tracer's bounded ring, the
   Chrome trace_event export (parsed back with the same Json module the
   CLI uses to self-validate), the zero-cost disabled path, and the
   reconciliation of cache hit/miss counters against latency charges. *)

module C = Braid_core
module U = Braid_uarch
module Obs = Braid_obs

(* one braided benchmark trace, shared across tests *)
let scale = 1000

let prepared =
  lazy
    (let profile = Braid_workload.Spec.find "gzip" in
     let program, init_mem = Braid_workload.Spec.generate profile ~seed:1 ~scale in
     let braided = (C.Transform.run program).C.Transform.program in
     let out = Emulator.run ~max_steps:(50 * scale) ~init_mem braided in
     (Option.get out.Emulator.trace, List.map fst init_mem))

let run_braid ~obs =
  let trace, warm_data = Lazy.force prepared in
  U.Pipeline.run ~obs ~warm_data U.Config.braid_8wide trace

let count obs name =
  match Obs.Counters.find (Obs.Sink.counters obs) name with
  | Some (Obs.Counters.Count n) -> n
  | Some _ -> Alcotest.failf "%s is a histogram" name
  | None -> Alcotest.failf "counter %s not registered" name

(* --- counters accumulate across a run ---------------------------------- *)

let test_counters_accumulate () =
  let obs = Obs.Sink.create () in
  let r = run_braid ~obs in
  Alcotest.(check int) "commit.instrs = instructions" r.U.Pipeline.instructions
    (count obs "commit.instrs");
  Alcotest.(check int) "dispatch = commit" (count obs "commit.instrs")
    (count obs "dispatch.instrs");
  Alcotest.(check int) "issue = commit" (count obs "commit.instrs")
    (count obs "issue.instrs");
  Alcotest.(check bool) "fetch >= commit" true
    (count obs "fetch.instrs" >= count obs "commit.instrs");
  Alcotest.(check int) "predictor.lookups mirrors result"
    r.U.Pipeline.branch_lookups
    (count obs "predictor.lookups");
  Alcotest.(check int) "predictor.mispredicts mirrors result"
    r.U.Pipeline.branch_mispredicts
    (count obs "predictor.mispredicts");
  Alcotest.(check int) "l1d.misses mirrors result" r.U.Pipeline.l1d_misses
    (count obs "l1d.misses");
  Alcotest.(check int) "extfile.dispatch_stalls mirrors result"
    r.U.Pipeline.dispatch_stall_regs
    (count obs "extfile.dispatch_stalls");
  (* every allocated external entry is released exactly once: early
     (dead-value) or at commit *)
  Alcotest.(check int) "allocs = early + commit releases"
    (count obs "extfile.allocs")
    (count obs "extfile.early_releases" + count obs "extfile.commit_releases");
  (* occupancy histogram observed once per cycle *)
  (match Obs.Counters.find (Obs.Sink.counters obs) "core.occupancy" with
  | Some (Obs.Counters.Hist { observations; _ }) ->
      Alcotest.(check int) "one occupancy sample per cycle"
        (r.U.Pipeline.cycles + 1) observations
  | _ -> Alcotest.fail "core.occupancy histogram not registered")

(* --- histogram bucketing ------------------------------------------------ *)

let test_histogram_buckets () =
  let reg = Obs.Counters.create () in
  let h = Obs.Counters.histogram reg "h" ~bounds:[| 0; 2; 4 |] in
  List.iter (Obs.Counters.observe h) [ 0; 1; 2; 3; 4; 5; 100 ];
  (match Obs.Counters.find reg "h" with
  | Some (Obs.Counters.Hist { bounds; counts; observations; sum }) ->
      Alcotest.(check (array int)) "bounds kept" [| 0; 2; 4 |] bounds;
      Alcotest.(check (array int)) "bucket counts (incl. overflow)"
        [| 1; 2; 2; 2 |] counts;
      Alcotest.(check int) "observations" 7 observations;
      Alcotest.(check int) "sum" 115 sum
  | _ -> Alcotest.fail "histogram not found");
  (* re-registration with identical bounds shares the handle *)
  let h' = Obs.Counters.histogram reg "h" ~bounds:[| 0; 2; 4 |] in
  Obs.Counters.observe h' 1;
  (match Obs.Counters.find reg "h" with
  | Some (Obs.Counters.Hist { observations; _ }) ->
      Alcotest.(check int) "shared handle" 8 observations
  | _ -> Alcotest.fail "histogram not found");
  Alcotest.check_raises "different bounds rejected"
    (Invalid_argument "Counters.histogram h: re-registered with different bounds")
    (fun () -> ignore (Obs.Counters.histogram reg "h" ~bounds:[| 1; 3 |]))

(* --- tracer ring buffer ------------------------------------------------- *)

let stall c = Obs.Tracer.Stall { cycle = c; track = -1; reason = "t" }

let test_ring_drops_oldest () =
  let tr = Obs.Tracer.create ~capacity:4 () in
  for c = 0 to 5 do
    Obs.Tracer.record tr (stall c)
  done;
  Alcotest.(check int) "length capped" 4 (Obs.Tracer.length tr);
  Alcotest.(check int) "dropped counted" 2 (Obs.Tracer.dropped tr);
  let cycles =
    List.map
      (function Obs.Tracer.Stall { cycle; _ } -> cycle | _ -> -1)
      (Obs.Tracer.events tr)
  in
  Alcotest.(check (list int)) "oldest dropped, oldest-first order" [ 2; 3; 4; 5 ]
    cycles;
  Obs.Tracer.clear tr;
  Alcotest.(check int) "clear empties" 0 (Obs.Tracer.length tr)

(* --- Chrome export round-trips through the Json parser ------------------ *)

let test_chrome_roundtrip () =
  let obs = Obs.Sink.create () in
  let tr = Obs.Tracer.create () in
  Obs.Sink.attach_tracer obs tr;
  ignore (run_braid ~obs);
  let doc = Obs.Chrome.export tr in
  let j = Json.parse_exn doc in
  let events =
    match Json.member "traceEvents" j with
    | Some (Json.Arr evs) -> evs
    | _ -> Alcotest.fail "no traceEvents array"
  in
  Alcotest.(check bool) "events non-empty" true (events <> []);
  let thread_names =
    List.filter_map
      (fun e ->
        match (Json.member "ph" e, Json.member "args" e) with
        | Some (Json.Str "M"), Some args -> (
            match Json.member "name" args with
            | Some (Json.Str n) -> Some n
            | _ -> None)
        | _ -> None)
      events
  in
  Alcotest.(check bool) "at least one BEU track" true
    (List.exists
       (fun n -> String.length n >= 3 && String.sub n 0 3 = "BEU")
       thread_names);
  Alcotest.(check bool) "a stall carries its reason" true
    (List.exists
       (fun e ->
         match Json.member "args" e with
         | Some args -> Json.member "reason" args <> None
         | None -> false)
       events);
  (* the compact printer round-trips what it parsed *)
  Alcotest.(check bool) "print/parse round-trip" true
    (Json.parse_exn (Json.to_string j) = j)

(* --- disabled path records nothing and changes nothing ------------------ *)

let test_disabled_records_nothing () =
  let tr = Obs.Tracer.create () in
  Obs.Sink.attach_tracer Obs.Sink.disabled tr;
  Alcotest.(check bool) "no tracer on disabled sink" true
    (Obs.Sink.tracer Obs.Sink.disabled = None);
  let r_plain = run_braid ~obs:Obs.Sink.disabled in
  Alcotest.(check int) "disabled tracer saw nothing" 0 (Obs.Tracer.length tr);
  Alcotest.(check int) "disabled registry stays empty" 0
    (List.length (Obs.Counters.snapshot (Obs.Sink.counters Obs.Sink.disabled)));
  (* observability does not perturb the simulation *)
  let obs = Obs.Sink.create () in
  Obs.Sink.attach_tracer obs (Obs.Tracer.create ());
  let r_obs = run_braid ~obs in
  Alcotest.(check int) "identical cycle count" r_plain.U.Pipeline.cycles
    r_obs.U.Pipeline.cycles;
  Alcotest.(check int) "identical l1d misses" r_plain.U.Pipeline.l1d_misses
    r_obs.U.Pipeline.l1d_misses

(* --- cache counters reconcile with latency charges ---------------------- *)

let small_l1 = { U.Config.size_bytes = 256; ways = 2; line_bytes = 64; latency = 1 }

let mem_cfg =
  {
    U.Config.l1i = small_l1;
    l1d = small_l1;
    l2 = { U.Config.size_bytes = 4096; ways = 4; line_bytes = 64; latency = 6 };
    memory_latency = 100;
    perfect_icache = false;
    perfect_dcache = false;
  }

let test_cache_reconcile () =
  let obs = Obs.Sink.create () in
  let h = U.Mem_hier.create_hierarchy ~obs mem_cfg in
  (* 2-way, 64B lines, 2 sets: 0, 128 and 256 all map to set 0.
     0 M, 0 H, 128 M, 0 H, 256 M (evicts LRU 128), 128 M (evicts LRU 0),
     0 M — true LRU gives exactly 2 hits / 5 misses; FIFO would differ. *)
  let seq = [ 0; 0; 128; 0; 256; 128; 0 ] in
  let hits = ref 0 and misses = ref 0 in
  List.iter
    (fun addr ->
      let lat = U.Mem_hier.instr_latency h addr in
      if lat = small_l1.U.Config.latency then incr hits else incr misses)
    seq;
  Alcotest.(check (pair int int)) "latency-derived L1I hit/miss" (2, 5)
    (!hits, !misses);
  Alcotest.(check (pair int int)) "Cache.l1i_stats agrees" (2, 5)
    (U.Mem_hier.l1i_stats h);
  Alcotest.(check int) "l1i.hits counter agrees" 2 (count obs "l1i.hits");
  Alcotest.(check int) "l1i.misses counter agrees" 5 (count obs "l1i.misses");
  (* same reconciliation on the data side *)
  let d_hits = ref 0 and d_misses = ref 0 in
  List.iter
    (fun addr ->
      let lat = U.Mem_hier.data_latency h addr in
      if lat = small_l1.U.Config.latency then incr d_hits else incr d_misses)
    [ 64; 64; 192; 64 ];
  Alcotest.(check (pair int int)) "latency-derived L1D hit/miss" (2, 2)
    (!d_hits, !d_misses);
  Alcotest.(check int) "l1d.hits counter agrees" !d_hits (count obs "l1d.hits");
  Alcotest.(check int) "l1d.misses counter agrees" !d_misses
    (count obs "l1d.misses");
  (* warm-up fills stay uncounted *)
  U.Mem_hier.warm_instr h 512;
  Alcotest.(check int) "warm_instr uncounted" 5 (count obs "l1i.misses")

let suite =
  ( "obs",
    [
      Alcotest.test_case "counters accumulate" `Quick test_counters_accumulate;
      Alcotest.test_case "histogram buckets" `Quick test_histogram_buckets;
      Alcotest.test_case "ring drops oldest" `Quick test_ring_drops_oldest;
      Alcotest.test_case "chrome roundtrip" `Quick test_chrome_roundtrip;
      Alcotest.test_case "disabled records nothing" `Quick
        test_disabled_records_nothing;
      Alcotest.test_case "cache counters reconcile" `Quick test_cache_reconcile;
    ] )
