(* Deeper cross-cutting property tests: reference-model checks for the
   ISA semantics and caches, conservation laws for the characterisation
   passes, lower bounds for the timing models, and structural bounds for
   the allocators. *)

module C = Braid_core
module U = Braid_uarch
module Spec = Braid_workload.Spec

(* --- ISA semantics against an independent reference ------------------- *)

(* Reference semantics written directly from the ISA description, kept
   deliberately separate from Op.eval_ibin's implementation. *)
let reference_ibin (o : Op.ibin) a b =
  let open Int64 in
  match o with
  | Op.Add -> add a b
  | Op.Sub -> sub a b
  | Op.Mul -> mul a b
  | Op.Div -> if equal b 0L then minus_one else div a b
  | Op.Rem -> if equal b 0L then a else rem a b
  | Op.And -> logand a b
  | Op.Or -> logor a b
  | Op.Xor -> logxor a b
  | Op.Andnot -> logand a (lognot b)
  | Op.Shl -> shift_left a (to_int (logand b 63L))
  | Op.Shr -> shift_right_logical a (to_int (logand b 63L))
  | Op.Cmpeq -> if equal a b then 1L else 0L
  | Op.Cmplt -> if compare a b < 0 then 1L else 0L
  | Op.Cmple -> if compare a b <= 0 then 1L else 0L

let all_ibins =
  [ Op.Add; Op.Sub; Op.Mul; Op.Div; Op.Rem;
    Op.And; Op.Or; Op.Xor; Op.Andnot; Op.Shl; Op.Shr;
    Op.Cmpeq; Op.Cmplt; Op.Cmple ]

let qcheck_ibin_reference =
  QCheck.Test.make ~name:"integer ALU matches reference semantics" ~count:2000
    QCheck.(triple (int_range 0 13) int64 int64)
    (fun (oi, a, b) ->
      let o = List.nth all_ibins oi in
      Int64.equal (Op.eval_ibin o a b) (reference_ibin o a b))

let qcheck_cond_consistent =
  QCheck.Test.make ~name:"conditions partition by sign" ~count:1000 QCheck.int64
    (fun v ->
      let eq = Op.eval_cond Op.Eq v and ne = Op.eval_cond Op.Ne v in
      let lt = Op.eval_cond Op.Lt v and ge = Op.eval_cond Op.Ge v in
      let le = Op.eval_cond Op.Le v and gt = Op.eval_cond Op.Gt v in
      eq <> ne && lt <> ge && le <> gt
      && le = (lt || eq)
      && gt = ((not lt) && not eq))

let qcheck_cmp_agree =
  QCheck.Test.make ~name:"compare ops agree with conditions" ~count:1000
    QCheck.(pair int64 int64)
    (fun (a, b) ->
      let via_cmp = Int64.equal (Op.eval_ibin Op.Cmplt a b) 1L in
      via_cmp = (Int64.compare a b < 0))

(* --- Encode golden vectors --------------------------------------------- *)

let test_encode_golden () =
  (* fixed reference encodings: any change to the binary format is a
     deliberate, visible event *)
  let cases =
    [
      ("nop", Instr.make Op.Nop, 0x0000000000000000L);
      ( "addq r1, r2, r3",
        Instr.make (Op.Ibin (Op.Add, Reg.ext Reg.Cint 3, Reg.ext Reg.Cint 1, Reg.ext Reg.Cint 2)),
        Encode.encode
          (Instr.make (Op.Ibin (Op.Add, Reg.ext Reg.Cint 3, Reg.ext Reg.Cint 1, Reg.ext Reg.Cint 2))) );
    ]
  in
  List.iter
    (fun (name, ins, expected) ->
      Alcotest.(check int64) name expected (Encode.encode ins))
    cases;
  (* structural facts that must hold for any layout *)
  let w =
    Encode.encode
      (Instr.make (Op.Ibin (Op.Add, Reg.intern 5, Reg.ext Reg.Cint 1, Reg.intern 2)))
  in
  Alcotest.(check bool) "I bit set for internal dest" true
    (Int64.logand (Int64.shift_right_logical w 55) 1L = 1L);
  Alcotest.(check bool) "E bit clear without dup" true
    (Int64.logand (Int64.shift_right_logical w 54) 1L = 0L);
  Alcotest.(check bool) "T2 bit set for internal src2" true
    (Int64.logand (Int64.shift_right_logical w 37) 1L = 1L)

let test_encode_program_length () =
  let prog, _ = Spec.generate (Spec.find "gcc") ~seed:1 ~scale:1500 in
  let conv = (C.Transform.conventional prog).C.Extalloc.program in
  Alcotest.(check int) "one word per instruction"
    (Program.num_static_instrs conv)
    (Array.length (Encode.encode_program conv))

(* --- Cache against a reference LRU model ------------------------------- *)

module Ref_lru = struct
  (* sets as lists, most-recent first *)
  type t = { sets : int; ways : int; line_bytes : int; mutable state : (int * int list) list }

  let create ~sets ~ways ~line_bytes = { sets; ways; line_bytes; state = [] }

  let access t addr =
    let line = addr / t.line_bytes in
    let set = line mod t.sets in
    let tag = line / t.sets in
    let entries = try List.assoc set t.state with Not_found -> [] in
    let hit = List.mem tag entries in
    let entries' = tag :: List.filter (fun x -> x <> tag) entries in
    let entries' =
      if List.length entries' > t.ways then
        List.filteri (fun i _ -> i < t.ways) entries'
      else entries'
    in
    t.state <- (set, entries') :: List.remove_assoc set t.state;
    hit
end

let qcheck_cache_model =
  QCheck.Test.make ~name:"cache matches reference LRU model" ~count:100
    QCheck.(small_list (int_range 0 4095))
    (fun addrs ->
      let geometry =
        { U.Config.size_bytes = 1024; ways = 2; line_bytes = 64; latency = 1 }
      in
      let cache = U.Cache.create geometry in
      let reference = Ref_lru.create ~sets:8 ~ways:2 ~line_bytes:64 in
      List.for_all
        (fun addr -> U.Cache.access cache addr = Ref_lru.access reference addr)
        addrs)

(* --- Predictor robustness ---------------------------------------------- *)

let qcheck_predictor_robust =
  QCheck.Test.make ~name:"predictors never crash, accuracy in [0,1]" ~count:50
    QCheck.(pair (int_range 0 2) (small_list (pair (int_range 0 100000) bool)))
    (fun (kind, stream) ->
      let predictor_kind =
        match kind with
        | 0 -> U.Config.Perceptron
        | 1 -> U.Config.Gshare
        | _ -> U.Config.Perfect_prediction
      in
      let pred =
        U.Predictor.create { U.Config.ooo_8wide with U.Config.predictor = predictor_kind }
      in
      List.iter
        (fun (pc, taken) -> ignore (U.Predictor.predict_and_train pred ~pc:(pc * 4) ~taken))
        stream;
      let a = U.Predictor.accuracy pred in
      a >= 0.0 && a <= 1.0)

(* --- Core-kind vocabulary ----------------------------------------------- *)

(* Every registered kind survives of_string ∘ to_string — including any
   future kind, since the generator indexes Core_kind.all. *)
let qcheck_core_kind_roundtrip =
  QCheck.Test.make ~name:"every core kind round-trips of_string∘to_string"
    ~count:200
    QCheck.(int_range 0 (List.length U.Config.Core_kind.all - 1))
    (fun i ->
      let k = List.nth U.Config.Core_kind.all i in
      match U.Config.Core_kind.of_string (U.Config.Core_kind.to_string k) with
      | Ok k' -> k = k'
      | Error _ -> false)

(* The CLI's unknown-kind error is the discoverability surface for the
   core vocabulary: whatever the input, a rejection must list every name
   in Core_kind.names (so registering a kind can never leave the message
   stale), and an acceptance must land on a registered kind. *)
let qcheck_core_kind_error_in_sync =
  QCheck.Test.make ~name:"unknown-kind error lists every registered name"
    ~count:500
    QCheck.(string_gen_of_size (Gen.int_range 0 12) Gen.printable)
    (fun s ->
      match U.Config.Core_kind.of_string s with
      | Ok k -> List.mem k U.Config.Core_kind.all
      | Error msg ->
          List.for_all
            (fun name -> Astring_contains.contains msg name)
            U.Config.Core_kind.names)

(* --- Value_stats conservation ------------------------------------------ *)

let qcheck_value_stats_conservation =
  QCheck.Test.make ~name:"value stats: every definition becomes one value" ~count:20
    QCheck.(pair (int_range 0 25) (int_range 0 100))
    (fun (pidx, seed) ->
      let p = List.nth Spec.all pidx in
      let prog, init_mem = Spec.generate p ~seed ~scale:1200 in
      let conv = (C.Transform.conventional prog).C.Extalloc.program in
      let t = Option.get (Emulator.run ~max_steps:100_000 ~init_mem conv).Emulator.trace in
      let vs = C.Value_stats.of_trace t in
      let defs =
        Array.fold_left
          (fun acc (e : Trace.event) ->
            acc
            + List.length
                (List.filter (fun r -> not (Reg.is_zero r)) (Instr.defs e.Trace.instr)))
          0 t.Trace.events
      in
      vs.C.Value_stats.values = defs
      && Histogram.count vs.C.Value_stats.fanout = defs)

(* --- Timing lower bounds ------------------------------------------------ *)

(* The longest register-dependence chain is a hard lower bound for any of
   the machines (loads counted at their best case: 1 cycle forward). *)
let critical_path (t : Trace.t) =
  let n = Array.length t.Trace.events in
  let depth = Array.make n 0 in
  Array.iteri
    (fun i (e : Trace.event) ->
      let best = if e.Trace.is_load then 1 else e.Trace.latency in
      let d =
        Array.fold_left (fun acc (p, _) -> max acc depth.(p)) 0 e.Trace.deps
      in
      depth.(i) <- d + best)
    t.Trace.events;
  Array.fold_left max 0 depth

let named_cfg name = { U.Config.ooo_8wide with U.Config.name }

let qcheck_cycles_lower_bounds =
  QCheck.Test.make ~name:"cycles respect width and dependence lower bounds" ~count:12
    QCheck.(pair (int_range 0 25) (int_range 0 50))
    (fun (pidx, seed) ->
      let p = List.nth Spec.all pidx in
      let prog, init_mem = Spec.generate p ~seed ~scale:1200 in
      let conv = (C.Transform.conventional prog).C.Extalloc.program in
      let t = Option.get (Emulator.run ~max_steps:100_000 ~init_mem conv).Emulator.trace in
      let warm = List.map fst init_mem in
      let cp = critical_path t in
      List.for_all
        (fun cfg ->
          let r = U.Pipeline.run ~warm_data:warm cfg t in
          r.U.Pipeline.cycles >= cp
          && r.U.Pipeline.cycles
             >= Trace.length t / cfg.U.Config.fetch_width)
        [ U.Config.in_order_8wide; U.Config.ooo_8wide;
          U.Config.perfect_frontend (named_cfg "ooo-pf") ])

(* --- Allocator register-bound property ---------------------------------- *)

let qcheck_allocator_respects_budget =
  QCheck.Test.make ~name:"allocation uses only budget + scratch registers" ~count:15
    QCheck.(triple (int_range 0 25) (int_range 0 50) (int_range 1 6))
    (fun (pidx, seed, usable) ->
      let p = List.nth Spec.all pidx in
      let prog, _ = Spec.generate p ~seed ~scale:1000 in
      let res = C.Extalloc.allocate ~usable prog in
      let ok = ref true in
      Program.iter_instrs
        (fun _ _ ins ->
          List.iter
            (fun (r : Reg.t) ->
              if r.Reg.space = Reg.Ext && not (Reg.is_zero r) then
                if not (r.Reg.idx < usable || r.Reg.idx >= C.Extalloc.usable_per_class)
                then ok := false)
            (Instr.defs ins @ Instr.uses ins))
        res.C.Extalloc.program;
      !ok)

(* --- Workload structure -------------------------------------------------- *)

let test_blocks_well_shaped () =
  List.iter
    (fun (p : Spec.profile) ->
      let prog, _ = Spec.generate p ~seed:1 ~scale:2000 in
      Array.iter
        (fun (b : Program.block) ->
          Alcotest.(check bool)
            (Printf.sprintf "%s block %d size sane" p.Spec.name b.Program.id)
            true
            (Array.length b.Program.instrs <= 128);
          Array.iteri
            (fun k ins ->
              if k < Array.length b.Program.instrs - 1 then
                Alcotest.(check bool) "transfers only terminal" false
                  (Op.is_branch ins.Instr.op || ins.Instr.op = Op.Halt))
            b.Program.instrs)
        prog.Program.blocks)
    Spec.all

let test_deterministic_experiments () =
  let run () =
    let ctx = Braid_sim.Suite.create_ctx () in
    Braid_sim.Experiments.run ctx ~scale:1000
      (Braid_sim.Experiments.find "table2")
  in
  let a = run () and b = run () in
  Alcotest.(check string) "experiments deterministic"
    (Braid_sim.Report.render a) (Braid_sim.Report.render b)

let suite =
  ( "properties",
    [
      QCheck_alcotest.to_alcotest qcheck_ibin_reference;
      QCheck_alcotest.to_alcotest qcheck_cond_consistent;
      QCheck_alcotest.to_alcotest qcheck_cmp_agree;
      Alcotest.test_case "encode golden" `Quick test_encode_golden;
      Alcotest.test_case "encode program length" `Quick test_encode_program_length;
      QCheck_alcotest.to_alcotest qcheck_cache_model;
      QCheck_alcotest.to_alcotest qcheck_predictor_robust;
      QCheck_alcotest.to_alcotest qcheck_core_kind_roundtrip;
      QCheck_alcotest.to_alcotest qcheck_core_kind_error_in_sync;
      QCheck_alcotest.to_alcotest qcheck_value_stats_conservation;
      QCheck_alcotest.to_alcotest qcheck_cycles_lower_bounds;
      QCheck_alcotest.to_alcotest qcheck_allocator_respects_budget;
      Alcotest.test_case "blocks well shaped" `Quick test_blocks_well_shaped;
      Alcotest.test_case "experiments deterministic" `Slow test_deterministic_experiments;
    ] )
