(* Tests for Braid_util.Ring (bounded FIFO) and Bitvec. *)

let test_fifo_order () =
  let r = Ring.create ~dummy:0 ~capacity:4 in
  Ring.push r 1;
  Ring.push r 2;
  Ring.push r 3;
  Alcotest.(check int) "pop 1" 1 (Ring.pop r);
  Alcotest.(check int) "pop 2" 2 (Ring.pop r);
  Ring.push r 4;
  Alcotest.(check int) "pop 3" 3 (Ring.pop r);
  Alcotest.(check int) "pop 4" 4 (Ring.pop r);
  Alcotest.(check bool) "empty" true (Ring.is_empty r)

let test_capacity () =
  let r = Ring.create ~dummy:0 ~capacity:2 in
  Ring.push r 1;
  Ring.push r 2;
  Alcotest.(check bool) "full" true (Ring.is_full r);
  Alcotest.check_raises "push full" (Failure "Ring.push: full") (fun () ->
      Ring.push r 3)

let test_empty_errors () =
  let r : int Ring.t = Ring.create ~dummy:0 ~capacity:2 in
  Alcotest.check_raises "pop empty" (Failure "Ring.pop: empty") (fun () ->
      ignore (Ring.pop r));
  Alcotest.check_raises "peek empty" (Failure "Ring.peek: empty") (fun () ->
      ignore (Ring.peek r))

let test_get_and_peek () =
  let r = Ring.create ~dummy:0 ~capacity:8 in
  List.iter (Ring.push r) [ 10; 20; 30 ];
  Alcotest.(check int) "peek" 10 (Ring.peek r);
  Alcotest.(check int) "get 0" 10 (Ring.get r 0);
  Alcotest.(check int) "get 2" 30 (Ring.get r 2);
  Alcotest.check_raises "out of range" (Invalid_argument "Ring.get: index out of range")
    (fun () -> ignore (Ring.get r 3))

let test_remove_at () =
  let r = Ring.create ~dummy:0 ~capacity:8 in
  List.iter (Ring.push r) [ 1; 2; 3; 4 ];
  Alcotest.(check int) "remove middle" 2 (Ring.remove_at r 1);
  Alcotest.(check (list int)) "remaining order" [ 1; 3; 4 ] (Ring.to_list r);
  Alcotest.(check int) "remove head" 1 (Ring.remove_at r 0);
  Alcotest.(check (list int)) "remaining" [ 3; 4 ] (Ring.to_list r)

let test_wraparound () =
  let r = Ring.create ~dummy:0 ~capacity:3 in
  (* cycle through to force head wrap *)
  for i = 1 to 10 do
    Ring.push r i;
    Alcotest.(check int) "fifo through wrap" i (Ring.pop r)
  done;
  List.iter (Ring.push r) [ 100; 200 ];
  Alcotest.(check (list int)) "wrapped contents" [ 100; 200 ] (Ring.to_list r)

let test_iter_fold () =
  let r = Ring.create ~dummy:0 ~capacity:8 in
  List.iter (Ring.push r) [ 1; 2; 3 ];
  Alcotest.(check int) "fold sum" 6 (Ring.fold ( + ) 0 r);
  let acc = ref [] in
  Ring.iteri (fun i x -> acc := (i, x) :: !acc) r;
  Alcotest.(check (list (pair int int))) "iteri order" [ (0, 1); (1, 2); (2, 3) ]
    (List.rev !acc);
  Alcotest.(check bool) "exists" true (Ring.exists (fun x -> x = 2) r);
  Alcotest.(check bool) "not exists" false (Ring.exists (fun x -> x = 9) r)

let test_clear () =
  let r = Ring.create ~dummy:0 ~capacity:4 in
  List.iter (Ring.push r) [ 1; 2 ];
  Ring.clear r;
  Alcotest.(check bool) "cleared" true (Ring.is_empty r);
  Ring.push r 7;
  Alcotest.(check int) "usable after clear" 7 (Ring.pop r)

(* Model-based: a ring behaves like a bounded list queue. *)
let qcheck_model =
  let ops =
    QCheck.(small_list (oneof [ Gen.map (fun n -> `Push n) Gen.small_int |> make; Gen.return `Pop |> make ]))
  in
  QCheck.Test.make ~name:"ring matches list-queue model" ~count:300 ops (fun ops ->
      let r = Ring.create ~dummy:0 ~capacity:8 in
      let model = ref [] in
      List.for_all
        (fun op ->
          match op with
          | `Push n ->
              if List.length !model < 8 then begin
                Ring.push r n;
                model := !model @ [ n ];
                Ring.to_list r = !model
              end
              else true
          | `Pop -> (
              match !model with
              | [] -> Ring.is_empty r
              | x :: rest ->
                  let y = Ring.pop r in
                  model := rest;
                  x = y && Ring.to_list r = !model))
        ops)

let test_bitvec_basic () =
  let v = Bitvec.create 8 in
  Alcotest.(check int) "length" 8 (Bitvec.length v);
  Alcotest.(check bool) "initially clear" false (Bitvec.get v 3);
  Bitvec.set v 3;
  Alcotest.(check bool) "set" true (Bitvec.get v 3);
  Bitvec.clear v 3;
  Alcotest.(check bool) "cleared" false (Bitvec.get v 3);
  Bitvec.assign v 5 true;
  Alcotest.(check int) "popcount" 1 (Bitvec.popcount v);
  Alcotest.(check string) "to_string" "00000100" (Bitvec.to_string v)

let test_bitvec_bounds () =
  let v = Bitvec.create 4 in
  Alcotest.check_raises "oob" (Invalid_argument "Bitvec: index out of range")
    (fun () -> Bitvec.set v 4)

let test_bitvec_bulk () =
  let v = Bitvec.create 10 in
  Bitvec.set_all v;
  Alcotest.(check int) "all set" 10 (Bitvec.popcount v);
  Alcotest.(check (option int)) "no clear bit" None (Bitvec.first_clear v);
  Bitvec.clear v 4;
  Alcotest.(check (option int)) "first clear" (Some 4) (Bitvec.first_clear v);
  Bitvec.clear_all v;
  Alcotest.(check int) "all clear" 0 (Bitvec.popcount v)

let test_bitvec_copy () =
  let v = Bitvec.create 6 in
  Bitvec.set v 2;
  let w = Bitvec.copy v in
  Bitvec.clear v 2;
  Alcotest.(check bool) "copy independent" true (Bitvec.get w 2)

let test_bitvec_fold () =
  let v = Bitvec.create 16 in
  List.iter (Bitvec.set v) [ 1; 5; 9 ];
  let idx = Bitvec.fold_set (fun i acc -> i :: acc) v [] in
  Alcotest.(check (list int)) "fold_set ascending" [ 1; 5; 9 ] (List.rev idx)

let qcheck_bitvec_popcount =
  QCheck.Test.make ~name:"bitvec popcount matches model" ~count:300
    QCheck.(small_list (int_range 0 31))
    (fun idxs ->
      let v = Bitvec.create 32 in
      List.iter (Bitvec.set v) idxs;
      Bitvec.popcount v = List.length (List.sort_uniq compare idxs))

let suite =
  ( "ring-bitvec",
    [
      Alcotest.test_case "fifo order" `Quick test_fifo_order;
      Alcotest.test_case "capacity" `Quick test_capacity;
      Alcotest.test_case "empty errors" `Quick test_empty_errors;
      Alcotest.test_case "get and peek" `Quick test_get_and_peek;
      Alcotest.test_case "remove_at" `Quick test_remove_at;
      Alcotest.test_case "wraparound" `Quick test_wraparound;
      Alcotest.test_case "iter fold" `Quick test_iter_fold;
      Alcotest.test_case "clear" `Quick test_clear;
      QCheck_alcotest.to_alcotest qcheck_model;
      Alcotest.test_case "bitvec basic" `Quick test_bitvec_basic;
      Alcotest.test_case "bitvec bounds" `Quick test_bitvec_bounds;
      Alcotest.test_case "bitvec bulk" `Quick test_bitvec_bulk;
      Alcotest.test_case "bitvec copy" `Quick test_bitvec_copy;
      Alcotest.test_case "bitvec fold" `Quick test_bitvec_fold;
      QCheck_alcotest.to_alcotest qcheck_bitvec_popcount;
    ] )
