(* Domain-pool runner: job ordering, exception propagation, telemetry, and
   the headline guarantee — `--jobs N` and `--jobs 1` produce identical
   typed results and byte-identical rendered tables. *)

module E = Braid_sim.Experiments
module R = Braid_sim.Runner
module S = Braid_sim.Suite

let test_pool_ordering () =
  let work =
    Array.init 23 (fun i -> (Printf.sprintf "job-%d" i, fun () -> i * i))
  in
  let check ~jobs =
    let out = R.map_jobs ~jobs work in
    Alcotest.(check int) "all jobs ran" 23 (Array.length out);
    Array.iteri
      (fun i (v, (t : R.telemetry)) ->
        Alcotest.(check int) "results in input order" (i * i) v;
        Alcotest.(check string) "telemetry label matches slot"
          (Printf.sprintf "job-%d" i) t.R.job_label)
      out
  in
  check ~jobs:1;
  check ~jobs:4;
  check ~jobs:64 (* more domains than jobs *)

let test_pool_exception () =
  let work =
    Array.init 8 (fun i ->
        ( Printf.sprintf "job-%d" i,
          fun () -> if i = 5 then failwith "boom" else i ))
  in
  let failing_label jobs =
    try
      ignore (R.map_jobs ~jobs work);
      Alcotest.fail "expected Job_failed"
    with R.Job_failed { label; error } ->
      Alcotest.(check bool) "original exception preserved" true
        (match error with Failure m -> String.equal m "boom" | _ -> false);
      label
  in
  Alcotest.(check string) "serial propagates the failing job" "job-5"
    (failing_label 1);
  Alcotest.(check string) "parallel propagates the failing job" "job-5"
    (failing_label 4)

(* A raising job rejects only its own slot: every other job in the batch
   still completes with its result (the pool is not poisoned). This is
   what lets the daemon turn one bad request into one Failed frame. *)
let test_pool_failure_isolation () =
  let work =
    Array.init 8 (fun i ->
        ( Printf.sprintf "job-%d" i,
          fun () -> if i = 2 || i = 5 then failwith "boom" else i * 10 ))
  in
  let check ~jobs =
    let out = R.try_map_jobs ~jobs work in
    Alcotest.(check int) "every slot has an outcome" 8 (Array.length out);
    Array.iteri
      (fun i outcome ->
        match outcome with
        | Ok (v, (t : R.telemetry)) ->
            Alcotest.(check bool) "only healthy slots succeed" true
              (i <> 2 && i <> 5);
            Alcotest.(check int) "result in input order" (i * 10) v;
            Alcotest.(check string) "telemetry label"
              (Printf.sprintf "job-%d" i) t.R.job_label
        | Error (e : R.job_error) ->
            Alcotest.(check bool) "only raising slots fail" true
              (i = 2 || i = 5);
            Alcotest.(check string) "failing label"
              (Printf.sprintf "job-%d" i) e.R.e_label;
            Alcotest.(check bool) "original exception preserved" true
              (match e.R.error with
              | Failure m -> String.equal m "boom"
              | _ -> false))
      out
  in
  check ~jobs:1;
  check ~jobs:4

let test_pool_telemetry () =
  let jobs = 3 in
  let work = Array.init 10 (fun i -> (string_of_int i, fun () -> i)) in
  let out = R.map_jobs ~jobs work in
  Array.iter
    (fun (_, (t : R.telemetry)) ->
      Alcotest.(check bool) "wall clock non-negative" true (t.R.wall_s >= 0.0);
      Alcotest.(check bool) "domain within pool" true
        (t.R.domain >= 0 && t.R.domain < jobs))
    out

(* The determinism contract of the ISSUE: two experiments at scale 2000,
   serial vs 4-way parallel, byte-identical rendering and equal typed
   results. Fresh contexts on each side so nothing is shared. *)
let test_jobs_determinism () =
  let exps = [ E.find "fanout-lifetime"; E.find "table2" ] in
  let batch jobs =
    let ctx = S.create_ctx () in
    List.map fst (R.run_experiments ~ctx ~jobs ~scale:2000 exps)
  in
  let serial = batch 1 and parallel = batch 4 in
  List.iter2
    (fun (a : E.result) (b : E.result) ->
      Alcotest.(check string)
        ("rendered identical: " ^ a.E.id)
        (Braid_sim.Report.render_full a)
        (Braid_sim.Report.render_full b);
      Alcotest.(check bool)
        ("typed results equal: " ^ a.E.id)
        true (a = b))
    serial parallel;
  Alcotest.(check string) "headline summary identical"
    (Braid_sim.Report.headline_summary serial)
    (Braid_sim.Report.headline_summary parallel)

(* Parallel runs also go through the shared memoised context safely. *)
let test_shared_ctx_parallel () =
  let ctx = S.create_ctx () in
  let exps = [ E.find "table2" ] in
  let a = List.map fst (R.run_experiments ~ctx ~jobs:4 ~scale:1200 exps) in
  let b = List.map fst (R.run_experiments ~ctx ~jobs:4 ~scale:1200 exps) in
  Alcotest.(check bool) "rerun on a warm context is identical" true (a = b)

let test_json_shape () =
  let ctx = S.create_ctx () in
  let results = R.run_experiments ~ctx ~jobs:2 ~scale:1200 [ E.find "table2" ] in
  let json =
    Braid_sim.Report.to_json ~scale:1200 ~jobs:2
      (List.map (fun (r, st) -> (r, Some st)) results)
  in
  List.iter
    (fun fragment ->
      Alcotest.(check bool) ("json mentions " ^ fragment) true
        (Astring_contains.contains json fragment))
    [
      "\"id\":\"table2\""; "\"columns\""; "\"rows\""; "\"label\":\"gcc\"";
      "\"headline\""; "\"wall_s\""; "\"job\":\"table2/gcc\"";
    ]

let suite =
  ( "runner",
    [
      Alcotest.test_case "pool ordering" `Quick test_pool_ordering;
      Alcotest.test_case "pool exception propagation" `Quick test_pool_exception;
      Alcotest.test_case "pool failure isolation" `Quick
        test_pool_failure_isolation;
      Alcotest.test_case "pool telemetry" `Quick test_pool_telemetry;
      Alcotest.test_case "jobs determinism" `Slow test_jobs_determinism;
      Alcotest.test_case "shared ctx parallel" `Slow test_shared_ctx_parallel;
      Alcotest.test_case "json shape" `Quick test_json_shape;
    ] )
