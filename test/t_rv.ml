(* The RV32IM frontend: decoder goldens and round-trips, loader failure
   paths (mirroring Wire's rejection style), the reference emulator's
   HTIF conventions, the generator self-check (decode inverts encode;
   the translator is total), origin provenance through the compiler, the
   committed-hex sync check, and the frontend differential oracle over
   every committed fixture — reference emulator vs translated IR vs all
   three timing cores. *)

module Rv = Braid_rv
module I = Rv.Insn
module Img = Rv.Image
module C = Braid_core
module Ck = Braid_check

let check = Alcotest.(check bool)

(* --- decoder goldens --- *)

(* Hand-assembled words (cross-checked against a stock RV32 assembler). *)
let decoder_golden =
  [
    (0x00100093, I.Alui (I.Add, 1, 0, 1)); (* addi x1, x0, 1 *)
    (0x003100b3, I.Alu (I.Add, 1, 2, 3)); (* add x1, x2, x3 *)
    (0x40310133, I.Alu (I.Sub, 2, 2, 3)); (* sub x2, x2, x3 *)
    (0x123452b7, I.Lui (5, 0x12345)); (* lui x5, 0x12345 *)
    (0x12345297, I.Auipc (5, 0x12345)); (* auipc x5, 0x12345 *)
    (0x008000ef, I.Jal (1, 8)); (* jal x1, +8 *)
    (0x000300e7, I.Jalr (1, 6, 0)); (* jalr x1, x6, 0 *)
    (0x00208463, I.Branch (I.Beq, 1, 2, 8)); (* beq x1, x2, +8 *)
    (0xfe209ee3, I.Branch (I.Bne, 1, 2, -4)); (* bne x1, x2, -4 *)
    (0x0043a303, I.Load (I.W, 6, 7, 4)); (* lw x6, 4(x7) *)
    (0x0003c303, I.Load (I.Bu, 6, 7, 0)); (* lbu x6, 0(x7) *)
    (0x0063a423, I.Store (I.W, 6, 7, 8)); (* sw x6, 8(x7) *)
    (0x02730533, I.Muldiv (I.Mul, 10, 6, 7)); (* mul x10, x6, x7 *)
    (0x0273c533, I.Muldiv (I.Div, 10, 7, 7)); (* div x10, x7, x7 *)
    (0x00000073, I.Ecall);
    (0x00100073, I.Ebreak);
  ]

let test_decoder_golden () =
  List.iter
    (fun (word, insn) ->
      (match I.decode word with
      | Ok got ->
          check (Printf.sprintf "decode 0x%08x = %s" word (I.to_string insn))
            true (got = insn)
      | Error e ->
          Alcotest.fail
            (Printf.sprintf "decode 0x%08x: %s" word (I.error_to_string e)));
      check
        (Printf.sprintf "encode %s = 0x%08x" (I.to_string insn) word)
        true
        (I.encode insn = word))
    decoder_golden

let test_decoder_rejections () =
  (match I.decode 0x0001 with
  | Error (I.Compressed _) -> ()
  | _ -> Alcotest.fail "RVC halfword not rejected as Compressed");
  (match I.decode 0x00001073 with
  (* csrrw x0, cycle, x0: SYSTEM beyond ecall/ebreak *)
  | Error (I.Illegal _) -> ()
  | _ -> Alcotest.fail "CSR access not rejected as Illegal");
  match I.decode 0xffffffff with
  | Error (I.Illegal _) -> ()
  | _ -> Alcotest.fail "all-ones word not rejected"

(* --- generator self-check: satellite for lib/check/gen.ml --- *)

let test_rv_selfcheck () =
  match Ck.Gen.rv_selfcheck ~seed:11 ~count:400 with
  | [] -> ()
  | violations ->
      Alcotest.fail
        (Printf.sprintf "%d violation(s), first: %s" (List.length violations)
           (List.hd violations))

(* --- loader failure paths --- *)

let expect_error label result pred =
  match result with
  | Ok (_ : Img.t) -> Alcotest.fail (label ^ ": accepted")
  | Error e ->
      check
        (label ^ ": " ^ Img.error_to_string e)
        true (pred e)

let test_loader_failures () =
  expect_error "empty flat image" (Img.of_flat "")
    (function Img.Truncated _ -> true | _ -> false);
  expect_error "oversize image"
    (Img.of_flat (String.make (Img.max_bytes + 4) '\x00'))
    (function Img.Oversized _ -> true | _ -> false);
  expect_error "misaligned entry"
    (Img.of_flat ~entry:2 "\x73\x00\x00\x00\x73\x00\x00\x00")
    (function Img.Misaligned { what = "entry pc"; _ } -> true | _ -> false);
  expect_error "entry outside image"
    (Img.of_flat ~entry:64 "\x73\x00\x00\x00")
    (function Img.Bad_entry _ -> true | _ -> false);
  expect_error "misaligned base"
    (Img.of_flat ~base:6 "\x73\x00\x00\x00")
    (function Img.Misaligned { what = "base"; _ } -> true | _ -> false);
  expect_error "bad ELF magic"
    (Img.of_elf ("\x7fBAD" ^ String.make 60 '\x00'))
    (function Img.Bad_magic _ -> true | _ -> false);
  expect_error "truncated ELF header"
    (Img.of_elf "\x7f\x45\x4c\x46\x01\x01")
    (function Img.Truncated _ -> true | _ -> false);
  expect_error "hex: bad magic" (Img.of_hex "not-a-magic\n00000073\n")
    (function Img.Bad_magic _ -> true | _ -> false);
  expect_error "hex: malformed word"
    (Img.of_hex "braid-rv/1 x\n0000zz73\n")
    (function Img.Malformed _ -> true | _ -> false)

let test_hex_roundtrip () =
  List.iter
    (fun name ->
      let img = Option.get (Rv.Fixtures.image name) in
      match Img.of_hex (Img.to_hex img) with
      | Ok img' -> check (name ^ " hex round-trip") true (img = img')
      | Error e -> Alcotest.fail (name ^ ": " ^ Img.error_to_string e))
    Rv.Fixtures.names

(* --- committed hex stays in sync with the fixture sources --- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let fixture_hex_path name =
  let candidates =
    [
      Filename.concat "../examples/rv" (name ^ ".hex");
      Filename.concat "examples/rv" (name ^ ".hex");
    ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None ->
      Alcotest.fail
        (Printf.sprintf "examples/rv/%s.hex not found (cwd %s)" name
           (Sys.getcwd ()))

let test_committed_hex_in_sync () =
  List.iter
    (fun name ->
      let img = Option.get (Rv.Fixtures.image name) in
      let committed = read_file (fixture_hex_path name) in
      check
        (Printf.sprintf
           "examples/rv/%s.hex matches the assembled fixture (regenerate \
            with `braidsim rv fixture:%s --hex-out examples/rv/%s.hex`)"
           name name name)
        true
        (committed = Img.to_hex img))
    Rv.Fixtures.names

(* --- reference emulator conventions --- *)

let test_emu_htif () =
  let hello = Option.get (Rv.Fixtures.image "hello") in
  let out = Rv.Emu.run hello in
  check "hello exits 0" true (out.Rv.Emu.stop = Rv.Emu.Exited 0);
  Alcotest.(check string) "putchar stream" "hello, braids!" out.Rv.Emu.output;
  let fib = Option.get (Rv.Fixtures.image "fib") in
  let out = Rv.Emu.run fib in
  check "fib exits with fib(20)" true (out.Rv.Emu.stop = Rv.Emu.Exited 6765)

let test_emu_fuel_and_fault () =
  (* jal x0, 0: a tight self-loop never exits *)
  let loop = Result.get_ok (Img.of_flat "\x6f\x00\x00\x00") in
  let out = Rv.Emu.run ~max_steps:100 loop in
  check "self-loop runs out of fuel" true (out.Rv.Emu.stop = Rv.Emu.Out_of_fuel);
  check "fuel accounting" true (out.Rv.Emu.steps = 100);
  (* lw x1, 1(x0): misaligned load faults *)
  let mis = Result.get_ok (Img.of_flat "\x83\x20\x10\x00") in
  let out = Rv.Emu.run mis in
  match out.Rv.Emu.stop with
  | Rv.Emu.Fault _ -> ()
  | s -> Alcotest.fail ("expected fault, got " ^ Rv.Emu.stop_to_string s)

(* --- translator: origin provenance, typed rejection --- *)

let test_origin_annotations () =
  let img = Option.get (Rv.Fixtures.image "fib") in
  let t = Result.get_ok (Rv.Translate.run img) in
  let with_origin = ref 0 and total = ref 0 in
  Program.iter_instrs
    (fun _ _ ins ->
      incr total;
      if ins.Instr.annot.Instr.origin <> None then incr with_origin)
    t.Rv.Translate.program;
  check "most translated instructions carry an origin" true
    (!with_origin * 2 > !total);
  (* the disassembly prints it as a comment *)
  let printed = Disasm.program t.Rv.Translate.program in
  check "origin rendered as ;<pc mnemonic>" true
    (Astring_contains.contains printed ";<0000 ");
  (* and the braid compiler preserves it through rewriting *)
  let braided = (C.Transform.run t.Rv.Translate.program).C.Transform.program in
  let survived = ref false in
  Program.iter_instrs
    (fun _ _ ins ->
      if ins.Instr.annot.Instr.origin <> None then survived := true)
    braided;
  check "origin survives the braid pass" true !survived

let test_translate_rejects_data_pc () =
  (* entry points at a data word: typed decode error, no exception *)
  let img = Result.get_ok (Img.of_flat "\x09\x00\x00\x00") in
  match Rv.Translate.run img with
  | Error (Rv.Translate.Decode _) -> ()
  | Error e -> Alcotest.fail (Rv.Translate.error_to_string e)
  | Ok _ -> Alcotest.fail "data word translated"

let test_translate_rejects_bad_target () =
  (* beq x0, x0, +64 jumps outside a two-word image *)
  let beq = I.encode (I.Branch (I.Beq, 0, 0, 64)) in
  let b = Bytes.create 8 in
  Bytes.set_int32_le b 0 (Int32.of_int beq);
  Bytes.set_int32_le b 4 (Int32.of_int (I.encode I.Ecall));
  let img = Result.get_ok (Img.of_flat (Bytes.to_string b)) in
  match Rv.Translate.run img with
  | Error (Rv.Translate.Bad_target _) -> ()
  | Error e -> Alcotest.fail (Rv.Translate.error_to_string e)
  | Ok _ -> Alcotest.fail "out-of-image branch translated"

(* --- the frontend differential oracle over every committed fixture --- *)

(* (name, exit code, putchar output) — the architectural contract of each
   committed fixture; the oracle then enforces that the translated IR and
   all three cores reproduce the same final state. *)
let fixture_golden =
  [
    ("fib", 6765, "");
    ("memcpy", 5330, "");
    ("sieve", 25, "");
    ("dot", 0, "");
    ("qsort", 12505, "");
    ("crc32", 3844391041, "");
    ("hello", 0, "hello, braids!");
    ("divmix", 1, "");
  ]

(* nbody is the long-run fixture backing the sampled-simulation perf rows:
   ~1.5M dynamic rv instructions, far past the default step budget. Golden
   architectural numbers pin it, and the threaded-code fast engine must
   agree with the interpreter exactly — it is the fast-forward path whose
   speedup the perf harness reports. Deliberately not in [fixture_golden]:
   the full differential oracle would simulate every core on a
   million-instruction trace. *)
let test_nbody_golden () =
  let img = Option.get (Rv.Fixtures.image "nbody") in
  let max_steps = 2_000_000 in
  let r = Rv.Emu.run ~max_steps img in
  check "nbody exit code" true (r.Rv.Emu.stop = Rv.Emu.Exited 4289640473);
  Alcotest.(check int) "nbody dynamic instructions" 1_462_233 r.Rv.Emu.steps;
  Alcotest.(check string) "nbody output" "" r.Rv.Emu.output;
  let f = Rv.Emu.run_fast ~max_steps img in
  check "fast engine: same stop" true (f.Rv.Emu.stop = r.Rv.Emu.stop);
  Alcotest.(check int) "fast engine: same steps" r.Rv.Emu.steps f.Rv.Emu.steps;
  Alcotest.(check string) "fast engine: same output" r.Rv.Emu.output
    f.Rv.Emu.output;
  check "fast engine: same registers" true (f.Rv.Emu.regs = r.Rv.Emu.regs)

let test_fixture_oracle () =
  List.iter
    (fun (name, exit_code, output) ->
      let img = Option.get (Rv.Fixtures.image name) in
      match Ck.Rv_oracle.check img with
      | Error e -> Alcotest.fail (name ^ ": " ^ Rv.Translate.error_to_string e)
      | Ok rep ->
          if not (Ck.Rv_oracle.ok rep) then
            Alcotest.fail (Ck.Rv_oracle.render rep);
          check
            (Printf.sprintf "%s exit code %d" name exit_code)
            true
            (rep.Ck.Rv_oracle.exit_code = Some exit_code);
          Alcotest.(check string) (name ^ " output") output
            rep.Ck.Rv_oracle.output)
    fixture_golden

let suite =
  ( "rv",
    [
      Alcotest.test_case "decoder golden words" `Quick test_decoder_golden;
      Alcotest.test_case "decoder rejections" `Quick test_decoder_rejections;
      Alcotest.test_case "gen self-check (decode/encode, translator total)"
        `Quick test_rv_selfcheck;
      Alcotest.test_case "loader failure paths" `Quick test_loader_failures;
      Alcotest.test_case "hex round-trip" `Quick test_hex_roundtrip;
      Alcotest.test_case "committed hex in sync" `Quick
        test_committed_hex_in_sync;
      Alcotest.test_case "emulator HTIF exit and putchar" `Quick test_emu_htif;
      Alcotest.test_case "emulator fuel and faults" `Quick
        test_emu_fuel_and_fault;
      Alcotest.test_case "origin provenance end to end" `Quick
        test_origin_annotations;
      Alcotest.test_case "translator rejects data pc" `Quick
        test_translate_rejects_data_pc;
      Alcotest.test_case "translator rejects escaping branch" `Quick
        test_translate_rejects_bad_target;
      Alcotest.test_case "nbody golden run (both engines)" `Slow
        test_nbody_golden;
      Alcotest.test_case "differential oracle on all fixtures" `Slow
        test_fixture_oracle;
    ] )
