(* Sampled simulation: BBV profiling totals, k-means determinism (the
   property that makes the sampling spec a sound sweep-cache key),
   compiled-vs-interpreted fast-forward byte-identity, exactness of the
   commit-to-commit measurement when every interval is simulated, and the
   headline accuracy bound — sampled IPC within 2% of full simulation. *)

module U = Braid_uarch
module W = Braid_workload
module Suite = Braid_sim.Suite
module Sample = Braid_sample

let ctx = lazy (Suite.create_ctx ())

let prepare bench = Suite.prepare (Lazy.force ctx) (W.Spec.find bench)

let cores =
  [
    ("in-order", `Conv U.Config.in_order_8wide);
    ("ooo", `Conv U.Config.ooo_8wide);
    ("braid", `Braid U.Config.braid_8wide);
  ]

let full_and_sampled ~spec p = function
  | `Conv cfg ->
      (Suite.run_conv (Lazy.force ctx) p cfg,
       Suite.sample_conv (Lazy.force ctx) p ~spec cfg)
  | `Braid cfg ->
      (Suite.run_braid (Lazy.force ctx) p cfg,
       Suite.sample_braid (Lazy.force ctx) p ~spec cfg)

(* --- the acceptance bound: default spec, three benches, three cores --- *)

let test_error_bound bench (label, core) () =
  let p = prepare bench in
  let full, sampled = full_and_sampled ~spec:Sample.Spec.default p core in
  let err = Sample.Driver.error_vs ~full sampled in
  if err > 0.02 then
    Alcotest.failf "%s/%s: sampled IPC %.4f vs full %.4f — error %.2f%% > 2%%"
      bench label sampled.Sample.Driver.ipc full.U.Pipeline.ipc (100.0 *. err);
  Alcotest.(check int)
    "extrapolated instruction count is the true dynamic count"
    full.U.Pipeline.instructions
    sampled.Sample.Driver.result.U.Pipeline.instructions

(* --- exhaustive representatives: the measurement itself is exact --- *)

(* With a cluster budget no smaller than the interval count, every
   interval is its own representative; commit-to-commit deltas telescope
   and the functional warm-up covers each window's full prefix at this
   scale, so the weighted extrapolation reconstructs the full run's cycle
   count exactly. Any drift here is a measurement bug, not a clustering
   approximation. *)
let test_exhaustive_exact bench (label, core) () =
  let spec = { Sample.Spec.default with Sample.Spec.max_k = max_int } in
  let p = prepare bench in
  let full, sampled = full_and_sampled ~spec p core in
  Alcotest.(check int)
    (Printf.sprintf "%s/%s cycles reconstructed exactly" bench label)
    full.U.Pipeline.cycles sampled.Sample.Driver.result.U.Pipeline.cycles;
  List.iter
    (fun (r : Sample.Driver.rep) ->
      Alcotest.(check bool) "weights positive" true (r.Sample.Driver.weight > 0.0))
    sampled.Sample.Driver.reps;
  let wsum =
    List.fold_left
      (fun a (r : Sample.Driver.rep) -> a +. r.Sample.Driver.weight)
      0.0 sampled.Sample.Driver.reps
  in
  Alcotest.(check (float 1e-9)) "weights sum to 1" 1.0 wsum

(* --- BBV profile totals --- *)

let test_bbv_totals () =
  let p = prepare "gzip" in
  let program = p.Suite.conventional.Braid_core.Extalloc.program in
  let spec = Sample.Spec.default in
  let profile =
    Sample.Bbv.profile ~init_mem:p.Suite.init_mem
      ~max_steps:(50 * p.Suite.scale) ~spec
      (Emulator.Compiled.compile program)
  in
  let out =
    Emulator.run ~trace:false ~max_steps:(50 * p.Suite.scale)
      ~init_mem:p.Suite.init_mem program
  in
  Alcotest.(check int) "total = interpreted dynamic count"
    out.Emulator.dynamic_count profile.Sample.Bbv.total;
  let sum =
    Array.fold_left
      (fun a (iv : Sample.Bbv.interval) -> a + iv.Sample.Bbv.length)
      0 profile.Sample.Bbv.intervals
  in
  Alcotest.(check int) "interval lengths sum to total" profile.Sample.Bbv.total
    sum;
  Array.iteri
    (fun i (iv : Sample.Bbv.interval) ->
      if i < Array.length profile.Sample.Bbv.intervals - 1 then
        Alcotest.(check int) "only the last interval may fall short"
          spec.Sample.Spec.interval iv.Sample.Bbv.length)
    profile.Sample.Bbv.intervals

(* --- k-means determinism --- *)

let test_kmeans_deterministic () =
  let p = prepare "swim" in
  let program = p.Suite.conventional.Braid_core.Extalloc.program in
  let profile =
    Sample.Bbv.profile ~init_mem:p.Suite.init_mem
      ~max_steps:(50 * p.Suite.scale) ~spec:Sample.Spec.default
      (Emulator.Compiled.compile program)
  in
  let points =
    Array.map
      (fun (iv : Sample.Bbv.interval) -> iv.Sample.Bbv.vector)
      profile.Sample.Bbv.intervals
  in
  let a = Sample.Kmeans.cluster ~seed:1 ~k:4 points in
  let b = Sample.Kmeans.cluster ~seed:1 ~k:4 points in
  Alcotest.(check bool) "equal seeds, equal assignments" true
    (a.Sample.Kmeans.assign = b.Sample.Kmeans.assign);
  Alcotest.(check bool) "equal seeds, equal centroids" true
    (a.Sample.Kmeans.centroids = b.Sample.Kmeans.centroids);
  Alcotest.(check bool) "equal seeds, equal representatives" true
    (Sample.Kmeans.representatives a points
    = Sample.Kmeans.representatives b points)

(* Whole-driver determinism across contexts: a cold context, a second cold
   context and a warm (memoised) repeat must pick identical intervals and
   produce identical extrapolated results. *)
let rep_key (r : Sample.Driver.rep) =
  (r.Sample.Driver.interval_index, r.Sample.Driver.start,
   r.Sample.Driver.length, r.Sample.Driver.weight)

let test_driver_deterministic () =
  let spec = Sample.Spec.default in
  let run_in ctx =
    let p = Suite.prepare ctx (W.Spec.find "art") in
    Suite.sample_conv ctx p ~spec U.Config.in_order_8wide
  in
  let cold1 = run_in (Suite.create_ctx ()) in
  let warm_ctx = Suite.create_ctx () in
  let cold2 = run_in warm_ctx in
  let warm = run_in warm_ctx in
  let reps t = List.map rep_key t.Sample.Driver.reps in
  Alcotest.(check bool) "cold = cold" true (reps cold1 = reps cold2);
  Alcotest.(check bool) "cold = warm" true (reps cold1 = reps warm);
  Alcotest.(check int) "identical cycles" cold1.Sample.Driver.result.U.Pipeline.cycles
    cold2.Sample.Driver.result.U.Pipeline.cycles

(* A sampled sweep is deterministic across --jobs: the clustering runs
   inside each (memoised) job, so parallel scheduling must not change
   which intervals are simulated or what they measure. *)
let test_sampled_sweep_jobs_invariant () =
  let spec = { Sample.Spec.default with Sample.Spec.max_k = 4 } in
  let points =
    match
      Braid_dse.Grid.expand ~base:U.Config.braid_8wide
        ~mode:Braid_dse.Grid.Cartesian
        [ Result.get_ok (Braid_dse.Axis.of_spec "ext_regs=8,16") ]
    with
    | Ok pts -> pts
    | Error m -> Alcotest.fail m
  in
  let benches = [ W.Spec.find "gzip"; W.Spec.find "mcf" ] in
  let sweep jobs =
    let outcome =
      Braid_dse.Sweep.run
        ~ctx:(Suite.create_ctx ~sample:spec ())
        ~jobs ~seed:1 ~scale:6000 ~benches points
    in
    List.map
      (fun (pr : Braid_dse.Sweep.point_result) ->
        List.map
          (fun (r : Braid_dse.Sweep.run) ->
            (r.Braid_dse.Sweep.bench, r.Braid_dse.Sweep.cycles,
             r.Braid_dse.Sweep.instructions))
          pr.Braid_dse.Sweep.runs)
      outcome.Braid_dse.Sweep.results
  in
  Alcotest.(check bool) "jobs=1 and jobs=2 agree" true (sweep 1 = sweep 2)

(* --- compiled fast-forward byte-identity --- *)

(* The fast path underpinning everything above: the compiled emulator
   must agree with the interpreter in every architectural observable, on
   both binaries of every benchmark in the suite. *)
let test_compiled_identity () =
  List.iter
    (fun (profile : W.Spec.profile) ->
      let p = Suite.prepare (Lazy.force ctx) ~scale:1200 profile in
      List.iter
        (fun (label, program) ->
          let max_steps = 50 * p.Suite.scale in
          let i =
            Emulator.run ~trace:false ~max_steps ~init_mem:p.Suite.init_mem
              program
          in
          let c =
            Emulator.Compiled.execute ~max_steps ~init_mem:p.Suite.init_mem
              program
          in
          let name fmt =
            Printf.sprintf "%s %s %s" profile.W.Spec.name label fmt
          in
          Alcotest.(check int) (name "dynamic count")
            i.Emulator.dynamic_count c.Emulator.dynamic_count;
          Alcotest.(check int) (name "store count") i.Emulator.store_count
            c.Emulator.store_count;
          Alcotest.(check bool) (name "stop reason") true
            (i.Emulator.stop = c.Emulator.stop);
          Alcotest.(check int64) (name "memory fingerprint")
            (Emulator.memory_fingerprint i.Emulator.state)
            (Emulator.memory_fingerprint c.Emulator.state))
        [
          ("conv", p.Suite.conventional.Braid_core.Extalloc.program);
          ("braid", p.Suite.braid.Braid_core.Transform.program);
        ])
    W.Spec.all

(* --- measure_from validation --- *)

let test_measure_from_validation () =
  let p = prepare "mcf" in
  let trace = p.Suite.conv_trace () in
  let n = Array.length trace.Trace.events in
  let run mf = ignore (U.Pipeline.run ~measure_from:mf U.Config.ooo_8wide trace) in
  Alcotest.check_raises "negative"
    (Invalid_argument
       (Printf.sprintf "Pipeline.run: measure_from %d outside trace [0, %d)"
          (-1) n))
    (fun () -> run (-1));
  Alcotest.check_raises "past the end"
    (Invalid_argument
       (Printf.sprintf "Pipeline.run: measure_from %d outside trace [0, %d)" n n))
    (fun () -> run n);
  (* a valid boundary reports exactly the suffix length *)
  let r = U.Pipeline.run ~measure_from:(n / 2) U.Config.ooo_8wide trace in
  Alcotest.(check int) "suffix instruction count" (n - (n / 2))
    r.U.Pipeline.instructions;
  let full = U.Pipeline.run U.Config.ooo_8wide trace in
  Alcotest.(check bool) "suffix cycles below full" true
    (r.U.Pipeline.cycles < full.U.Pipeline.cycles)

let accuracy_cases =
  List.concat_map
    (fun bench -> List.map (fun c -> (bench, c)) cores)
    [ "gzip"; "swim"; "mcf" ]

let suite =
  ( "sample",
    [
      Alcotest.test_case "bbv totals" `Quick test_bbv_totals;
      Alcotest.test_case "kmeans deterministic" `Quick test_kmeans_deterministic;
      Alcotest.test_case "driver deterministic across ctxs" `Quick
        test_driver_deterministic;
      Alcotest.test_case "sampled sweep jobs-invariant" `Slow
        test_sampled_sweep_jobs_invariant;
      Alcotest.test_case "compiled emulator byte-identity" `Slow
        test_compiled_identity;
      Alcotest.test_case "measure_from validation" `Quick
        test_measure_from_validation;
    ]
    @ List.map
        (fun (bench, ((label, _) as core)) ->
          Alcotest.test_case
            (Printf.sprintf "error bound %s/%s" bench label)
            `Slow (test_error_bound bench core))
        accuracy_cases
    @ List.map
        (fun (bench, ((label, _) as core)) ->
          Alcotest.test_case
            (Printf.sprintf "exhaustive exact %s/%s" bench label)
            `Slow (test_exhaustive_exact bench core))
        [ ("art", List.nth cores 0); ("gzip", List.nth cores 2) ] )
