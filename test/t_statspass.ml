(* Tests for the characterisation passes (Value_stats, Braid_stats) and the
   render / experiment plumbing. *)

module C = Braid_core
module Spec = Braid_workload.Spec

let r n = Reg.ext Reg.Cint n
let i op = Instr.make op

let straight instrs =
  Program.make
    [ { Program.id = 0; instrs = Array.of_list (instrs @ [ i Op.Halt ]); fallthrough = None } ]
    ~entry:0

(* --- Value_stats --- *)

let test_fanout_basic () =
  (* v1 read twice, v2 read once, v3 never *)
  let p =
    straight
      [
        i (Op.Movi (r 1, 1L));
        i (Op.Ibini (Op.Add, r 2, r 1, 1));
        i (Op.Ibin (Op.Add, r 3, r 1, r 2));
      ]
  in
  let t = Option.get (Emulator.run p).Emulator.trace in
  let vs = C.Value_stats.of_trace t in
  Alcotest.(check int) "three values" 3 vs.C.Value_stats.values;
  Alcotest.(check (float 1e-9)) "one unused (r3)" (1.0 /. 3.0)
    (C.Value_stats.unused_fraction vs);
  Alcotest.(check (float 1e-9)) "one read exactly twice" (1.0 /. 3.0)
    (C.Value_stats.fanout_exactly vs 2)

let test_fanout_redefinition_cuts () =
  (* the first value of r1 is read once, then r1 is redefined; reads after
     that belong to the second value *)
  let p =
    straight
      [
        i (Op.Movi (r 1, 1L));
        i (Op.Ibini (Op.Add, r 2, r 1, 0));
        i (Op.Movi (r 1, 5L));
        i (Op.Ibini (Op.Add, r 3, r 1, 0));
        i (Op.Ibini (Op.Add, r 4, r 1, 0));
      ]
  in
  let t = Option.get (Emulator.run p).Emulator.trace in
  let vs = C.Value_stats.of_trace t in
  (* values: r1#1 read once; r2, r3, r4 never read; r1#2 read twice *)
  Alcotest.(check (float 1e-9)) "fanout-1 values" (1.0 /. 5.0)
    (C.Value_stats.fanout_exactly vs 1);
  Alcotest.(check (float 1e-9)) "fanout-2 value" (1.0 /. 5.0)
    (C.Value_stats.fanout_exactly vs 2);
  Alcotest.(check (float 1e-9)) "unused values" (3.0 /. 5.0)
    (C.Value_stats.unused_fraction vs)

let test_lifetime () =
  let p =
    straight
      [
        i (Op.Movi (r 1, 1L));
        (* uid 0 *)
        i Op.Nop;
        i Op.Nop;
        i (Op.Ibini (Op.Add, r 2, r 1, 0));
        (* uid 3: lifetime of r1's value = 3 *)
      ]
  in
  let t = Option.get (Emulator.run p).Emulator.trace in
  let vs = C.Value_stats.of_trace t in
  Alcotest.(check (float 1e-9)) "lifetime <= 2 excludes it" 0.0
    (C.Value_stats.lifetime_at_most vs 2);
  Alcotest.(check (float 1e-9)) "lifetime <= 3 includes it" 1.0
    (C.Value_stats.lifetime_at_most vs 3)

(* --- Braid_stats --- *)

let test_braid_stats_shapes () =
  let prog, _ = Spec.generate (Spec.find "gcc") ~seed:1 ~scale:1500 in
  let rep = C.Transform.run prog in
  let stats = C.Braid_stats.of_program rep.C.Transform.program in
  Alcotest.(check bool) "braids found" true (List.length stats.C.Braid_stats.braids > 0);
  List.iter
    (fun (b : C.Braid_stats.braid_info) ->
      Alcotest.(check bool) "size positive" true (b.C.Braid_stats.size > 0);
      Alcotest.(check bool) "depth within size" true
        (b.C.Braid_stats.depth >= 1 && b.C.Braid_stats.depth <= b.C.Braid_stats.size);
      Alcotest.(check bool) "width >= 1" true (b.C.Braid_stats.width >= 1.0 -. 1e-9);
      Alcotest.(check bool) "internals within size" true
        (b.C.Braid_stats.internals <= b.C.Braid_stats.size);
      Alcotest.(check bool) "single iff size 1" true
        (b.C.Braid_stats.is_single = (b.C.Braid_stats.size = 1)))
    stats.C.Braid_stats.braids;
  let s = C.Braid_stats.summarize stats in
  Alcotest.(check bool) "braids/block >= multi" true
    (s.C.Braid_stats.braids_per_block >= s.C.Braid_stats.braids_per_block_multi);
  Alcotest.(check bool) "single fraction sane" true
    (s.C.Braid_stats.single_instr_fraction >= 0.0
    && s.C.Braid_stats.single_instr_fraction <= 1.0)

let test_braid_stats_fp_bigger () =
  let summarize name =
    let prog, _ = Spec.generate (Spec.find name) ~seed:1 ~scale:2000 in
    C.Braid_stats.summarize
      (C.Braid_stats.of_program (C.Transform.run prog).C.Transform.program)
  in
  let mcf = summarize "mcf" and mgrid = summarize "mgrid" in
  Alcotest.(check bool) "mgrid braids bigger than mcf (paper Table 2)" true
    (mgrid.C.Braid_stats.avg_size_multi > mcf.C.Braid_stats.avg_size_multi)

(* --- Render --- *)

let test_render_table () =
  let s = Render.table ~header:[ "a"; "bb" ] ~rows:[ [ "1"; "2" ]; [ "33"; "4" ] ] in
  let lines = String.split_on_char '\n' s in
  Alcotest.(check bool) "has header, rule, rows" true (List.length lines >= 4);
  Alcotest.check_raises "ragged rejected" (Invalid_argument "Render.table: ragged row")
    (fun () -> ignore (Render.table ~header:[ "a" ] ~rows:[ [ "1"; "2" ] ]))

let test_render_bar_chart () =
  let s = Render.bar_chart ~title:"t" [ ("x", 1.0); ("y", 2.0) ] in
  Alcotest.(check bool) "mentions labels" true
    (String.length s > 0
    && Astring_contains.contains s "x"
    && Astring_contains.contains s "y");
  Alcotest.check_raises "negative rejected"
    (Invalid_argument "Render.bar_chart: negative value") (fun () ->
      ignore (Render.bar_chart ~title:"t" [ ("x", -1.0) ]))

let test_render_pct () =
  Alcotest.(check string) "pct" "91.2%" (Render.pct 0.912);
  Alcotest.(check string) "float cell" "1.250" (Render.float_cell 1.25)

(* --- Experiments plumbing (tiny scale) --- *)

let test_experiment_registry () =
  Alcotest.(check bool) "all experiments listed" true
    (List.length Braid_sim.Experiments.all >= 18);
  let ids =
    List.map
      (fun (e : Braid_sim.Experiments.t) -> e.Braid_sim.Experiments.id)
      Braid_sim.Experiments.all
  in
  Alcotest.(check int) "ids unique" (List.length ids)
    (List.length (List.sort_uniq compare ids));
  List.iter
    (fun id -> Alcotest.(check bool) ("has " ^ id) true (List.mem id ids))
    [ "table1"; "table2"; "table3"; "fig1"; "fig5"; "fig6"; "fig13"; "fig14" ]

let test_experiment_runs () =
  let ctx = Braid_sim.Suite.create_ctx () in
  let o =
    Braid_sim.Experiments.run ctx ~scale:1200
      (Braid_sim.Experiments.find "table1")
  in
  Alcotest.(check string) "id" "table1" o.Braid_sim.Experiments.id;
  Alcotest.(check bool) "rendered non-empty" true
    (String.length (Braid_sim.Report.render o) > 100);
  Alcotest.(check bool) "typed rows present" true
    (List.for_all
       (fun (s : Braid_sim.Experiments.series) ->
         List.length s.Braid_sim.Experiments.rows > 0)
       o.Braid_sim.Experiments.series
    && o.Braid_sim.Experiments.series <> []);
  Alcotest.(check bool) "headline present" true
    (List.length o.Braid_sim.Experiments.headline > 0)

let test_experiment_unknown () =
  Alcotest.(check bool) "unknown raises" true
    (try
       ignore (Braid_sim.Experiments.find "fig99");
       false
     with Not_found -> true)

let test_suite_memoisation () =
  let ctx = Braid_sim.Suite.create_ctx () in
  let p1 = Braid_sim.Suite.prepare ctx ~scale:1200 (Spec.find "gcc") in
  let p2 = Braid_sim.Suite.prepare ctx ~scale:1200 (Spec.find "gcc") in
  Alcotest.(check bool) "same prepared value" true (p1 == p2)

let suite =
  ( "stats-experiments",
    [
      Alcotest.test_case "fanout basic" `Quick test_fanout_basic;
      Alcotest.test_case "fanout redefinition" `Quick test_fanout_redefinition_cuts;
      Alcotest.test_case "lifetime" `Quick test_lifetime;
      Alcotest.test_case "braid stats shapes" `Quick test_braid_stats_shapes;
      Alcotest.test_case "fp braids bigger" `Quick test_braid_stats_fp_bigger;
      Alcotest.test_case "render table" `Quick test_render_table;
      Alcotest.test_case "render bar chart" `Quick test_render_bar_chart;
      Alcotest.test_case "render pct" `Quick test_render_pct;
      Alcotest.test_case "experiment registry" `Quick test_experiment_registry;
      Alcotest.test_case "experiment runs" `Slow test_experiment_runs;
      Alcotest.test_case "experiment unknown" `Quick test_experiment_unknown;
      Alcotest.test_case "suite memoisation" `Quick test_suite_memoisation;
    ] )
