(* Tests for the microarchitecture substrate: caches, predictor, and the
   five execution cores through the pipeline. *)

module C = Braid_core
module U = Braid_uarch
module Spec = Braid_workload.Spec
module Obs = Braid_obs

(* --- Cache --- *)

let small_geometry =
  { U.Config.size_bytes = 512; ways = 2; line_bytes = 64; latency = 3 }

let test_cache_hit_miss () =
  let c = U.Cache.create small_geometry in
  Alcotest.(check bool) "cold miss" false (U.Cache.access c 0);
  Alcotest.(check bool) "then hit" true (U.Cache.access c 0);
  Alcotest.(check bool) "same line hits" true (U.Cache.access c 63);
  Alcotest.(check bool) "next line misses" false (U.Cache.access c 64);
  Alcotest.(check int) "hits counted" 2 (U.Cache.hits c);
  Alcotest.(check int) "misses counted" 2 (U.Cache.misses c)

let test_cache_lru () =
  (* 512B / 64B lines / 2 ways = 4 sets; lines mapping to set 0 are
     multiples of 4*64=256 *)
  let c = U.Cache.create small_geometry in
  ignore (U.Cache.access c 0);
  ignore (U.Cache.access c 256);
  (* set 0 now holds lines {0, 256}; touch 0 to make 256 the LRU *)
  ignore (U.Cache.access c 0);
  ignore (U.Cache.access c 512);
  (* evicts 256 *)
  Alcotest.(check bool) "mru survives" true (U.Cache.access c 0);
  Alcotest.(check bool) "lru evicted" false (U.Cache.access c 256)

let test_hierarchy_latencies () =
  let h = U.Mem_hier.create_hierarchy U.Config.default_memory in
  let l1 = U.Config.default_memory.U.Config.l1d.U.Config.latency in
  let l2 = U.Config.default_memory.U.Config.l2.U.Config.latency in
  let mem = U.Config.default_memory.U.Config.memory_latency in
  Alcotest.(check int) "cold: full chain" (l1 + l2 + mem) (U.Mem_hier.data_latency h 0x4000);
  Alcotest.(check int) "warm: l1 hit" l1 (U.Mem_hier.data_latency h 0x4000);
  (* instruction side behaves likewise *)
  Alcotest.(check int) "icache cold" (3 + l2 + mem) (U.Mem_hier.instr_latency h 0x8000);
  Alcotest.(check int) "icache warm" 3 (U.Mem_hier.instr_latency h 0x8000)

let test_perfect_caches () =
  let m =
    { U.Config.default_memory with U.Config.perfect_icache = true; perfect_dcache = true }
  in
  let h = U.Mem_hier.create_hierarchy m in
  Alcotest.(check int) "perfect icache" 1 (U.Mem_hier.instr_latency h 0x123440);
  Alcotest.(check int) "perfect dcache is l1 latency" 3 (U.Mem_hier.data_latency h 0x998800)

let test_warm_does_not_count () =
  let h = U.Mem_hier.create_hierarchy U.Config.default_memory in
  U.Mem_hier.warm_instr h 0x1000;
  U.Mem_hier.warm_l2 h 0x2000;
  Alcotest.(check (pair int int)) "l1i stats untouched" (0, 0) (U.Mem_hier.l1i_stats h);
  Alcotest.(check (pair int int)) "l2 stats untouched" (0, 0) (U.Mem_hier.l2_stats h);
  (* but the state is warm *)
  Alcotest.(check int) "warm line hits l1i" 3 (U.Mem_hier.instr_latency h 0x1000);
  Alcotest.(check int) "warm data hits l2" (3 + 6) (U.Mem_hier.data_latency h 0x2000)

(* --- Predictor --- *)

let test_perceptron_learns_constant () =
  let pred = U.Predictor.create U.Config.ooo_8wide in
  for _ = 1 to 200 do
    ignore (U.Predictor.predict_and_train pred ~pc:0x40 ~taken:true)
  done;
  Alcotest.(check bool) "always-taken learned" true
    (U.Predictor.accuracy pred > 0.95)

let test_perceptron_learns_alternation () =
  let pred = U.Predictor.create U.Config.ooo_8wide in
  let flip = ref false in
  (* warm up, then measure *)
  for _ = 1 to 500 do
    flip := not !flip;
    ignore (U.Predictor.predict_and_train pred ~pc:0x80 ~taken:!flip)
  done;
  let correct = ref 0 in
  for _ = 1 to 200 do
    flip := not !flip;
    if U.Predictor.predict_and_train pred ~pc:0x80 ~taken:!flip then incr correct
  done;
  Alcotest.(check bool)
    (Printf.sprintf "alternation learned (%d/200)" !correct)
    true (!correct > 180)

let test_perfect_predictor () =
  let pred = U.Predictor.create (U.Config.perfect_frontend U.Config.ooo_8wide) in
  let rng = Prng.create 5L in
  for _ = 1 to 100 do
    Alcotest.(check bool) "always right" true
      (U.Predictor.predict_and_train pred ~pc:0x10 ~taken:(Prng.bool rng))
  done;
  Alcotest.(check int) "no mispredicts" 0 (U.Predictor.mispredicts pred)

(* --- Pipeline over the four cores --- *)

let trace_for ?(scale = 1500) ?(seed = 1) name =
  let profile = Spec.find name in
  let prog, init_mem = Spec.generate profile ~seed ~scale in
  let conv = (C.Transform.conventional prog).C.Extalloc.program in
  let braid = (C.Transform.run prog).C.Transform.program in
  let tr pr = Option.get (Emulator.run ~max_steps:100_000 ~init_mem pr).Emulator.trace in
  (tr conv, tr braid, List.map fst init_mem)

let test_all_cores_complete () =
  List.iter
    (fun name ->
      let conv, braid, warm = trace_for name in
      List.iter
        (fun cfg ->
          let r = U.Pipeline.run ~warm_data:warm cfg conv in
          Alcotest.(check int)
            (name ^ "/" ^ cfg.U.Config.name ^ " commits everything")
            (Trace.length conv) r.U.Pipeline.instructions;
          Alcotest.(check bool) "positive ipc" true (r.U.Pipeline.ipc > 0.0))
        [ U.Config.in_order_8wide; U.Config.dep_steer_8wide; U.Config.ooo_8wide ];
      let r = U.Pipeline.run ~warm_data:warm U.Config.braid_8wide braid in
      Alcotest.(check bool) (name ^ " braid completes") true (r.U.Pipeline.cycles > 0))
    [ "gcc"; "mcf"; "swim"; "twolf" ]

let test_cycles_at_least_critical () =
  (* an N-instruction fully serial chain cannot finish faster than the sum
     of latencies on any core *)
  let b = Braid_workload.Build.create () in
  let acc = Braid_workload.Build.const b Reg.Cint 1L in
  for _ = 1 to 50 do
    Braid_workload.Build.emit b (Op.Ibini (Op.Add, acc, acc, 1))
  done;
  let prog, init_mem = Braid_workload.Build.finish b in
  let conv = (C.Transform.conventional prog).C.Extalloc.program in
  let trace = Option.get (Emulator.run ~init_mem conv).Emulator.trace in
  List.iter
    (fun cfg ->
      let r = U.Pipeline.run cfg trace in
      Alcotest.(check bool)
        (cfg.U.Config.name ^ " respects the dependence chain")
        true
        (r.U.Pipeline.cycles >= 50))
    [ U.Config.in_order_8wide; U.Config.ooo_8wide ]

let test_ooo_beats_in_order () =
  let conv, _, warm = trace_for "eon" in
  let io = U.Pipeline.run ~warm_data:warm U.Config.in_order_8wide conv in
  let oo = U.Pipeline.run ~warm_data:warm U.Config.ooo_8wide conv in
  Alcotest.(check bool) "ooo faster than in-order" true
    (oo.U.Pipeline.cycles < io.U.Pipeline.cycles)

let test_perfect_predictor_helps () =
  let conv, _, warm = trace_for "vpr" in
  let real = U.Pipeline.run ~warm_data:warm U.Config.ooo_8wide conv in
  let perfect =
    U.Pipeline.run ~warm_data:warm
      { (U.Config.perfect_frontend U.Config.ooo_8wide) with U.Config.name = "ooo-perf" }
      conv
  in
  Alcotest.(check bool) "perfect front end no slower" true
    (perfect.U.Pipeline.cycles <= real.U.Pipeline.cycles)

let test_more_registers_monotone () =
  let conv, _, warm = trace_for "twolf" in
  let cycles n =
    (U.Pipeline.run ~warm_data:warm
       { U.Config.ooo_8wide with U.Config.ext_regs = n; name = Printf.sprintf "ooo-r%d" n }
       conv).U.Pipeline.cycles
  in
  let c8 = cycles 8 and c32 = cycles 32 and c256 = cycles 256 in
  Alcotest.(check bool) "8 <= 32 regs helps" true (c32 <= c8);
  Alcotest.(check bool) "32 <= 256 regs helps" true (c256 <= c32)

let test_more_beus_monotone () =
  let _, braid, warm = trace_for "swim" in
  let cycles n =
    (U.Pipeline.run ~warm_data:warm
       { U.Config.braid_8wide with U.Config.clusters = n; name = Printf.sprintf "braid-b%d" n }
       braid).U.Pipeline.cycles
  in
  let c1 = cycles 1 and c4 = cycles 4 and c8 = cycles 8 in
  Alcotest.(check bool) "1 -> 4 BEUs helps" true (c4 < c1);
  Alcotest.(check bool) "4 -> 8 BEUs helps" true (c8 <= c4)

let test_wider_window_monotone () =
  let _, braid, warm = trace_for "mgrid" in
  let cycles w =
    (U.Pipeline.run ~warm_data:warm
       { U.Config.braid_8wide with U.Config.sched_window = w; name = Printf.sprintf "braid-w%d" w }
       braid).U.Pipeline.cycles
  in
  Alcotest.(check bool) "window 2 >= window 1" true (cycles 2 <= cycles 1)

let test_mispredict_penalty_costs () =
  let conv, _, warm = trace_for "parser" in
  let cycles p =
    (U.Pipeline.run ~warm_data:warm
       { U.Config.ooo_8wide with U.Config.misprediction_penalty = p; name = Printf.sprintf "ooo-p%d" p }
       conv).U.Pipeline.cycles
  in
  Alcotest.(check bool) "deeper pipeline costs" true (cycles 40 > cycles 10)

let test_branch_stats_populated () =
  let conv, _, warm = trace_for "gcc" in
  let r = U.Pipeline.run ~warm_data:warm U.Config.ooo_8wide conv in
  Alcotest.(check bool) "lookups counted" true (r.U.Pipeline.branch_lookups > 0);
  Alcotest.(check bool) "mispredict rate sane" true
    (r.U.Pipeline.branch_mispredicts <= r.U.Pipeline.branch_lookups)

let test_fault_serializes () =
  (* a program with an FP divide-by-zero: the braid pipeline must complete
     and report the fault *)
  let b = Braid_workload.Build.create () in
  let zero_f = Braid_workload.Build.const b Reg.Cfp 0L in
  let one_f = Braid_workload.Build.const b Reg.Cfp 1L in
  let q = Braid_workload.Build.fp_reg b in
  Braid_workload.Build.emit b (Op.Fbin (Op.Fdiv, q, one_f, zero_f));
  let out, region, _ = Braid_workload.Build.alloc_array b ~words:1 ~init:(fun _ -> 0L) in
  Braid_workload.Build.emit b (Op.Store (q, out, 0, region));
  let prog, init_mem = Braid_workload.Build.finish b in
  let braided = (C.Transform.run prog).C.Transform.program in
  let trace = Option.get (Emulator.run ~init_mem braided).Emulator.trace in
  let r = U.Pipeline.run U.Config.braid_8wide trace in
  Alcotest.(check int) "one fault" 1 r.U.Pipeline.faults;
  Alcotest.(check bool) "completed" true (r.U.Pipeline.cycles > 0)

let test_speedup_helper () =
  let conv, _, warm = trace_for "gcc" in
  let a = U.Pipeline.run ~warm_data:warm U.Config.in_order_8wide conv in
  let b = U.Pipeline.run ~warm_data:warm U.Config.ooo_8wide conv in
  let s = U.Pipeline.speedup a b in
  Alcotest.(check (float 1e-9)) "speedup definition"
    (float_of_int a.U.Pipeline.cycles /. float_of_int b.U.Pipeline.cycles)
    s

let qcheck_all_cores_all_benchmarks =
  QCheck.Test.make ~name:"every paradigm completes every benchmark" ~count:15
    QCheck.(pair (int_range 0 25) (int_range 0 100))
    (fun (pidx, seed) ->
      let p = List.nth Spec.all pidx in
      let prog, init_mem = Spec.generate p ~seed ~scale:1200 in
      let conv = (C.Transform.conventional prog).C.Extalloc.program in
      let braid = (C.Transform.run prog).C.Transform.program in
      let tr pr = Option.get (Emulator.run ~max_steps:100_000 ~init_mem pr).Emulator.trace in
      let warm = List.map fst init_mem in
      let conv_t = tr conv and braid_t = tr braid in
      List.for_all
        (fun cfg ->
          (U.Pipeline.run ~warm_data:warm cfg conv_t).U.Pipeline.cycles > 0)
        [ U.Config.in_order_8wide; U.Config.dep_steer_8wide; U.Config.ooo_8wide ]
      && (U.Pipeline.run ~warm_data:warm U.Config.braid_8wide braid_t).U.Pipeline.cycles > 0)

(* --- do_issue precondition guards --- *)

let tiny_program () =
  fst (Braid_workload.Build.finish (Braid_workload.Build.create ()))

let mk_event ?(deps = [||]) ?(addr = -1) ?(is_load = false) ?(is_store = false)
    ~uid instr =
  {
    Trace.uid;
    pc = 4 * uid;
    block_id = 0;
    offset = uid;
    instr;
    deps;
    addr;
    is_load;
    is_store;
    is_cond_branch = false;
    is_jump = false;
    taken = false;
    next_pc = 4 * (uid + 1);
    latency = 1;
    writes_ext = Instr.writes_external instr;
    writes_int = Instr.writes_internal instr;
    ext_src_reads = Instr.reads_external_count instr;
    int_src_reads = 0;
    braid_id = -1;
    braid_start = false;
    faulting = false;
  }

let trace_of_events events =
  {
    Trace.events;
    stop = Trace.Halted;
    program = tiny_program ();
    warm_lines = None;
    tables = None;
  }

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let expect_invalid name f needle =
  match f () with
  | () -> Alcotest.failf "%s: expected Invalid_argument" name
  | exception Invalid_argument msg ->
      if not (contains msg needle) then
        Alcotest.failf "%s: message %S does not mention %S" name msg needle

let test_do_issue_guards () =
  let store =
    Instr.make (Op.Store (Reg.ext Reg.Cint 0, Reg.zero, 0, Op.region_unknown))
  in
  let load =
    Instr.make (Op.Load (Reg.ext Reg.Cint 1, Reg.zero, 0, Op.region_unknown))
  in
  (* issuing the same instruction twice *)
  let t =
    trace_of_events
      [| mk_event ~uid:0 ~is_store:true ~addr:0 store;
         mk_event ~uid:1 ~is_load:true ~addr:64 load |]
  in
  let m = U.Machine.create U.Config.in_order_8wide t in
  U.Machine.begin_cycle m;
  U.Machine.do_issue m 0;
  expect_invalid "double issue" (fun () -> U.Machine.do_issue m 0) "already issued";
  (* issuing with unready producers *)
  let t =
    trace_of_events
      [| mk_event ~uid:0 ~is_store:true ~addr:0 store;
         mk_event ~uid:1 ~deps:[| (0, false) |] ~is_load:true ~addr:64 load |]
  in
  let m = U.Machine.create U.Config.in_order_8wide t in
  U.Machine.begin_cycle m;
  expect_invalid "unready producers" (fun () -> U.Machine.do_issue m 1) "waits on";
  (* issuing a load while an older same-address store is unresolved *)
  let t =
    trace_of_events
      [| mk_event ~uid:0 ~is_store:true ~addr:0 store;
         mk_event ~uid:1 ~is_load:true ~addr:0 load |]
  in
  let m = U.Machine.create U.Config.in_order_8wide t in
  U.Machine.begin_cycle m;
  expect_invalid "memory-blocked load" (fun () -> U.Machine.do_issue m 1) "blocked"

(* --- Exec_core across every kind: drain and refusal accounting --- *)

(* A short single-braid / single-block dependence chain every core kind
   accepts: event 0 carries the S bit (braid steering) and offset 0
   (block steering); the rest ride the same braid/block. *)
let chain_events n =
  Array.init n (fun uid ->
      let dst = Reg.ext Reg.Cint (1 + (uid mod 4)) in
      let instr =
        if uid = 0 then Instr.make (Op.Movi (dst, 1L))
        else Instr.make (Op.Ibin (Op.Add, dst, Reg.ext Reg.Cint (uid mod 4), Reg.zero))
      in
      let deps = if uid = 0 then [||] else [| (uid - 1, false) |] in
      let e = mk_event ~deps ~uid instr in
      if uid = 0 then { e with Trace.braid_id = 0; braid_start = true }
      else { e with Trace.braid_id = 0 })

(* The Core drive loop, reduced to its contract: begin_cycle, commit,
   core cycle, then in-order dispatch — no fetch front-end. *)
let drive_to_drain cfg events =
  let t = trace_of_events events in
  let obs = Obs.Sink.create () in
  let m = U.Machine.create ~obs cfg t in
  let core = U.Exec_core.create m in
  let n = Array.length events in
  let next = ref 0 in
  let guard = ref 0 in
  while (not (U.Machine.all_committed m)) && !guard < 10_000 do
    incr guard;
    U.Machine.begin_cycle m;
    U.Machine.commit_stage m;
    U.Exec_core.cycle core;
    let continue = ref true in
    while !continue && !next < n do
      let u = !next in
      if U.Machine.can_dispatch m u && U.Exec_core.try_dispatch core u then begin
        U.Machine.note_dispatch m u;
        incr next
      end
      else continue := false
    done
  done;
  Alcotest.(check bool) "drained within the cycle guard" true
    (U.Machine.all_committed m);
  (core, obs)

let count_of obs name =
  match Obs.Counters.find (Obs.Sink.counters obs) name with
  | Some (Obs.Counters.Count n) -> n
  | _ -> 0

let test_occupancy_drains_all_kinds () =
  List.iter
    (fun kind ->
      let name = U.Config.Core_kind.to_string kind in
      let core, obs =
        drive_to_drain (U.Config.preset_of_kind kind) (chain_events 12)
      in
      Alcotest.(check int)
        (name ^ ": occupancy back to 0 after drain")
        0 (U.Exec_core.occupancy core);
      List.iter
        (fun counter ->
          Alcotest.(check int) (name ^ ": " ^ counter) 12 (count_of obs counter))
        [ "dispatch.instrs"; "issue.instrs"; "commit.instrs" ])
    U.Config.Core_kind.all

(* Shrink every kind's steering structure to a single one-entry queue /
   window so the second dispatch must be refused, and count the refusals:
   exactly one core.dispatch_rejects tick per [try_dispatch] returning
   [false]. *)
let test_dispatch_rejects_exactly_once () =
  List.iter
    (fun kind ->
      let name = U.Config.Core_kind.to_string kind in
      let cfg =
        {
          (U.Config.preset_of_kind kind) with
          U.Config.clusters = 1;
          fus_per_cluster = 1;
          cluster_entries = 1;
          sched_window = 1;
          block_windows = 1;
          block_head_window = 1;
        }
      in
      let t = trace_of_events (chain_events 3) in
      let obs = Obs.Sink.create () in
      let m = U.Machine.create ~obs cfg t in
      let core = U.Exec_core.create m in
      U.Machine.begin_cycle m;
      Alcotest.(check bool) (name ^ ": first dispatch accepted") true
        (U.Exec_core.try_dispatch core 0);
      Alcotest.(check int) (name ^ ": no refusal yet") 0
        (count_of obs "core.dispatch_rejects");
      Alcotest.(check bool) (name ^ ": full core refuses") false
        (U.Exec_core.try_dispatch core 1);
      Alcotest.(check int) (name ^ ": one refusal, one tick") 1
        (count_of obs "core.dispatch_rejects");
      Alcotest.(check bool) (name ^ ": still refuses") false
        (U.Exec_core.try_dispatch core 1);
      Alcotest.(check int) (name ^ ": second refusal, second tick") 2
        (count_of obs "core.dispatch_rejects"))
    U.Config.Core_kind.all

let suite =
  ( "uarch",
    [
      Alcotest.test_case "cache hit/miss" `Quick test_cache_hit_miss;
      Alcotest.test_case "cache lru" `Quick test_cache_lru;
      Alcotest.test_case "hierarchy latencies" `Quick test_hierarchy_latencies;
      Alcotest.test_case "perfect caches" `Quick test_perfect_caches;
      Alcotest.test_case "warm accesses uncounted" `Quick test_warm_does_not_count;
      Alcotest.test_case "perceptron constant" `Quick test_perceptron_learns_constant;
      Alcotest.test_case "perceptron alternation" `Quick test_perceptron_learns_alternation;
      Alcotest.test_case "perfect predictor" `Quick test_perfect_predictor;
      Alcotest.test_case "all cores complete" `Slow test_all_cores_complete;
      Alcotest.test_case "dependence chain bound" `Quick test_cycles_at_least_critical;
      Alcotest.test_case "ooo beats in-order" `Quick test_ooo_beats_in_order;
      Alcotest.test_case "perfect predictor helps" `Quick test_perfect_predictor_helps;
      Alcotest.test_case "registers monotone" `Quick test_more_registers_monotone;
      Alcotest.test_case "BEUs monotone" `Quick test_more_beus_monotone;
      Alcotest.test_case "window monotone" `Quick test_wider_window_monotone;
      Alcotest.test_case "penalty costs" `Quick test_mispredict_penalty_costs;
      Alcotest.test_case "branch stats" `Quick test_branch_stats_populated;
      Alcotest.test_case "fault serialises" `Quick test_fault_serializes;
      Alcotest.test_case "speedup helper" `Quick test_speedup_helper;
      Alcotest.test_case "do_issue guards" `Quick test_do_issue_guards;
      Alcotest.test_case "occupancy drains on every kind" `Quick
        test_occupancy_drains_all_kinds;
      Alcotest.test_case "dispatch refusals counted exactly once" `Quick
        test_dispatch_rejects_exactly_once;
      QCheck_alcotest.to_alcotest qcheck_all_cores_all_benchmarks;
    ] )
