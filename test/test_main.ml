(* Entry point aggregating every test suite. *)

let () =
  Alcotest.run "braid"
    [
      T_prng.suite;
      T_stats.suite;
      T_ring.suite;
      T_isa.suite;
      T_emulator.suite;
      T_workload.suite;
      T_braid.suite;
      T_transform.suite;
      T_uarch.suite;
      T_obs.suite;
      T_statspass.suite;
      T_extensions.suite;
      T_properties.suite;
      T_timing.suite;
      T_roundtrip.suite;
      T_runner.suite;
      T_calq.suite;
      T_golden.suite;
      T_config.suite;
      T_dse.suite;
      T_sample.suite;
      T_check.suite;
      T_cmp.suite;
      T_rv.suite;
      T_api.suite;
      T_conformance.suite;
    ]
